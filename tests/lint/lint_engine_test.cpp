// pckpt-lint engine suite: per-rule fixtures (one clean + one violating
// file per rule), golden diagnostic output, waiver-comment semantics,
// CLI exit codes, and the self-test that keeps the real tree clean.
//
// Fixtures live in tests/lint/fixtures/ and are linted under *virtual*
// paths (e.g. "src/sim/event.cpp") so the path-scoped rules fire; the
// directory itself is skipped by the CLI's tree walk on purpose.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint.hpp"

namespace lint = pckpt::lint;

namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(PCKPT_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Lint fixture `name` as if it lived at `virtual_path`.
std::vector<lint::Finding> lint_fixture(const std::string& name,
                                        const std::string& virtual_path,
                                        lint::LintStats* stats = nullptr) {
  lint::LintEngine engine;
  return engine.lint_source(virtual_path, read_fixture(name), stats);
}

int run_cli(const std::vector<std::string>& args, std::string* out_text = nullptr,
            std::string* err_text = nullptr) {
  std::ostringstream out, err;
  const int rc = lint::run_pckpt_lint(args, out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return rc;
}

/// Run the whole-tree project pass over fixtures, each linted under a
/// virtual path: {fixture name, virtual path} pairs.
std::vector<lint::Finding> lint_project_fixtures(
    const std::vector<std::pair<std::string, std::string>>& fixtures,
    lint::LintStats* stats = nullptr) {
  std::vector<std::pair<std::string, std::string>> files;
  for (const auto& [name, vpath] : fixtures) {
    files.emplace_back(vpath, read_fixture(name));
  }
  lint::LintEngine engine;
  return engine.lint_project(files, stats);
}

// ---------------------------------------------------------------------
// Per-rule fixture pairs.
// ---------------------------------------------------------------------

TEST(LintRules, WallClockFlagsSystemClockAndTime) {
  const auto fs = lint_fixture("wall_clock_bad.cpp", "src/core/x.cpp");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].rule, "wall-clock");
  EXPECT_EQ(fs[0].line, 6);
  EXPECT_EQ(fs[1].rule, "wall-clock");
  EXPECT_EQ(fs[1].line, 8);
}

TEST(LintRules, WallClockAllowsSteadyClock) {
  EXPECT_TRUE(lint_fixture("wall_clock_clean.cpp", "src/core/x.cpp").empty());
}

TEST(LintRules, RawRngFlagsDeviceEngineAndRand) {
  const auto fs = lint_fixture("raw_rng_bad.cpp", "src/core/x.cpp");
  ASSERT_EQ(fs.size(), 3u);
  for (const auto& f : fs) EXPECT_EQ(f.rule, "raw-rng");
}

TEST(LintRules, RawRngExemptsSrcRandom) {
  // The same violating source is legal inside src/random/.
  EXPECT_TRUE(lint_fixture("raw_rng_bad.cpp", "src/random/x.cpp").empty());
}

TEST(LintRules, RawRngAllowsProjectRng) {
  EXPECT_TRUE(lint_fixture("raw_rng_clean.cpp", "src/core/x.cpp").empty());
}

TEST(LintRules, UnorderedIterFlagsRangeFor) {
  const auto fs = lint_fixture("unordered_iter_bad.cpp", "src/sim/x.cpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "unordered-iter");
  EXPECT_EQ(fs[0].line, 7);
}

TEST(LintRules, UnorderedIterAllowsLookup) {
  EXPECT_TRUE(
      lint_fixture("unordered_iter_clean.cpp", "src/sim/x.cpp").empty());
}

TEST(LintRules, UnorderedIterScopedToKernelDirs) {
  // Outside src/sim|core|obs|serve the rule does not apply.
  EXPECT_TRUE(
      lint_fixture("unordered_iter_bad.cpp", "src/analysis/x.cpp").empty());
}

TEST(LintRules, UnorderedIterCoversServeTree) {
  // The serving layer caches payloads byte-for-byte, so it inherits the
  // same iteration-order ban as the kernel and observability trees.
  const auto fs = lint_fixture("unordered_iter_bad.cpp", "src/serve/x.cpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "unordered-iter");
}

TEST(LintRules, UnorderedIterCoversCkptTree) {
  // Checkpoint payloads are persisted and compared byte-for-byte across
  // kill/resume, so src/ckpt/ inherits the iteration-order ban too.
  const auto fs =
      lint_fixture("unordered_iter_ckpt_bad.cpp", "src/ckpt/x.cpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "unordered-iter");
  EXPECT_TRUE(
      lint_fixture("unordered_iter_ckpt_clean.cpp", "src/ckpt/x.cpp").empty());
}

TEST(LintRules, DeterminismRulesApplyUnderCkptTree) {
  // The directory-agnostic determinism rules must keep firing for
  // checkpoint sources: a wall-clock read or raw RNG in the encode path
  // would silently break resume byte-identity.
  const auto wall = lint_fixture("wall_clock_bad.cpp", "src/ckpt/x.cpp");
  ASSERT_FALSE(wall.empty());
  EXPECT_EQ(wall[0].rule, "wall-clock");
  const auto rng = lint_fixture("raw_rng_bad.cpp", "src/ckpt/x.cpp");
  ASSERT_FALSE(rng.empty());
  EXPECT_EQ(rng[0].rule, "raw-rng");
}

TEST(LintRules, FpAccumFlagsUnwaivedAccumulation) {
  const auto fs = lint_fixture("fp_accum_bad.cpp", "src/obs/x.cpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "fp-accum");
}

TEST(LintRules, FpAccumHonorsWaiver) {
  lint::LintStats stats;
  EXPECT_TRUE(
      lint_fixture("fp_accum_clean.cpp", "src/obs/x.cpp", &stats).empty());
  EXPECT_EQ(stats.waived, 1u);
}

TEST(LintRules, HotPathFunctionFlaggedInKernelFile) {
  const auto fs =
      lint_fixture("hot_path_function_bad.cpp", "src/sim/event.cpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "hot-path-function");
}

TEST(LintRules, HotPathFunctionAllowedOutsideKernelFiles) {
  // The same source in a non-kernel file (process.cpp is not in the
  // kernel set) is not the hot path's business.
  EXPECT_TRUE(
      lint_fixture("hot_path_function_bad.cpp", "src/sim/process.cpp")
          .empty());
}

TEST(LintRules, HotPathSharedPtrFlaggedInKernelFile) {
  const auto fs =
      lint_fixture("hot_path_shared_ptr_bad.cpp", "src/sim/event.cpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "hot-path-shared-ptr");
}

TEST(LintRules, HotPathContainerFlaggedInKernelFile) {
  const auto fs =
      lint_fixture("hot_path_container_bad.cpp", "src/sim/event.cpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "hot-path-container");
}

TEST(LintRules, HotPathFlatStorageClean) {
  EXPECT_TRUE(
      lint_fixture("hot_path_clean.cpp", "src/sim/event.cpp").empty());
  EXPECT_TRUE(
      lint_fixture("hot_path_function_clean.cpp", "src/sim/event.cpp")
          .empty());
}

TEST(LintRules, DeprecatedShimFlagsScheduleAndDefer) {
  const auto fs = lint_fixture("deprecated_shim_bad.cpp", "src/core/x.cpp");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].rule, "deprecated-shim");
  EXPECT_EQ(fs[1].rule, "deprecated-shim");
}

TEST(LintRules, DeprecatedShimAllowsTypedApi) {
  EXPECT_TRUE(
      lint_fixture("deprecated_shim_clean.cpp", "src/core/x.cpp").empty());
}

TEST(LintRules, DeprecatedShimFiresRepoWide) {
  // The shims are deleted from sim::Environment; no suite is exempt any
  // more — even the old shim-test path gets flagged.
  const auto fs = lint_fixture("deprecated_shim_bad.cpp",
                               "tests/sim/environment_test.cpp");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].rule, "deprecated-shim");
  EXPECT_EQ(fs[1].rule, "deprecated-shim");
}

TEST(LintRules, StderrLogFlagsDirectWritesInServeTree) {
  const auto fs = lint_fixture("stderr_log_bad.cpp", "src/serve/x.cpp");
  ASSERT_EQ(fs.size(), 3u);
  for (const auto& f : fs) EXPECT_EQ(f.rule, "stderr-log");
  EXPECT_EQ(fs[0].line, 7);  // std::cerr
  EXPECT_EQ(fs[1].line, 8);  // fprintf(stderr, ...)
  EXPECT_EQ(fs[2].line, 9);  // perror
}

TEST(LintRules, StderrLogCoversCkptAndExecTrees) {
  EXPECT_FALSE(
      lint_fixture("stderr_log_bad.cpp", "src/ckpt/x.cpp").empty());
  EXPECT_FALSE(
      lint_fixture("stderr_log_bad.cpp", "src/exec/x.cpp").empty());
}

TEST(LintRules, StderrLogScopedToDaemonTrees) {
  // CLI front-ends (tools/) and the obs tree itself — where the
  // RuntimeLog's own stderr sink lives — stay out of scope.
  EXPECT_TRUE(
      lint_fixture("stderr_log_bad.cpp", "tools/x.cpp").empty());
  EXPECT_TRUE(
      lint_fixture("stderr_log_bad.cpp", "src/obs/x.cpp").empty());
}

TEST(LintRules, StderrLogHonorsWaiver) {
  lint::LintStats stats;
  EXPECT_TRUE(
      lint_fixture("stderr_log_clean.cpp", "src/serve/x.cpp", &stats).empty());
  EXPECT_EQ(stats.waived, 1u);
}

TEST(LintRules, PragmaOnceRequiredInHeaders) {
  const auto fs = lint_fixture("pragma_once_bad.hpp", "src/core/x.hpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "pragma-once");
  EXPECT_TRUE(
      lint_fixture("pragma_once_clean.hpp", "src/core/x.hpp").empty());
}

TEST(LintRules, PragmaOnceNotRequiredInSources) {
  EXPECT_TRUE(lint_fixture("pragma_once_bad.hpp", "src/core/x.cpp").empty());
}

TEST(LintRules, UsingNamespaceBannedInHeaders) {
  const auto fs = lint_fixture("using_namespace_bad.hpp", "src/core/x.hpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "using-namespace");
  EXPECT_TRUE(
      lint_fixture("using_namespace_clean.hpp", "src/core/x.hpp").empty());
}

TEST(LintRules, StdIncludeRequiresDirectInclude) {
  const auto fs = lint_fixture("std_include_bad.hpp", "src/core/x.hpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "std-include");
  EXPECT_NE(fs[0].message.find("<string>"), std::string::npos);
  EXPECT_TRUE(
      lint_fixture("std_include_clean.hpp", "src/core/x.hpp").empty());
}

TEST(LintRules, StdIncludeScopedToSrcHeaders) {
  EXPECT_TRUE(
      lint_fixture("std_include_bad.hpp", "bench/x.hpp").empty());
}

// ---------------------------------------------------------------------
// Waiver semantics.
// ---------------------------------------------------------------------

TEST(LintWaivers, SameLineWaiverHonored) {
  lint::LintStats stats;
  EXPECT_TRUE(
      lint_fixture("waiver_same_line.cpp", "src/core/x.cpp", &stats).empty());
  EXPECT_EQ(stats.waived, 1u);
}

TEST(LintWaivers, StandaloneCommentCoversNextLine) {
  lint::LintStats stats;
  EXPECT_TRUE(
      lint_fixture("waiver_prev_line.cpp", "src/core/x.cpp", &stats).empty());
  EXPECT_EQ(stats.waived, 1u);
}

TEST(LintWaivers, WrongSlugDoesNotSuppress) {
  const auto fs = lint_fixture("waiver_wrong_slug.cpp", "src/core/x.cpp");
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "wall-clock");
}

TEST(LintWaivers, WaiverInProseCommentDoesNotLeakAcrossLines) {
  lint::LintEngine engine;
  // The waiver names the right slug but sits two lines above the
  // violation with code in between — it must not apply.
  const std::string src =
      "// lint: wall-clock-ok\n"
      "int unrelated = 0;\n"
      "double t() { return (double)time(nullptr); }\n";
  const auto fs = engine.lint_source("src/core/x.cpp", src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "wall-clock");
}

// ---------------------------------------------------------------------
// Golden diagnostic output.
// ---------------------------------------------------------------------

TEST(LintGolden, DiagnosticFormatIsStable) {
  const auto fs = lint_fixture("wall_clock_bad.cpp", "src/core/x.cpp");
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(lint::format_finding(fs[0]),
            "src/core/x.cpp:6:27: error: [wall-clock] wall-clock source "
            "'system_clock' is nondeterministic; use simulation time or "
            "steady_clock (waive: // lint: wall-clock-ok)");
  EXPECT_EQ(lint::format_finding(fs[1]),
            "src/core/x.cpp:8:19: error: [wall-clock] C time() reads the "
            "wall clock; simulations must be reproducible (waive: // lint: "
            "wall-clock-ok)");
}

TEST(LintGolden, FindingsSortedByLineThenColumn) {
  lint::LintEngine engine;
  const std::string src =
      "#include <ctime>\n"
      "double a() { return (double)time(nullptr); }\n"
      "int b() { return rand(); }\n";
  const auto fs = engine.lint_source("src/core/x.cpp", src);
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].line, 2);
  EXPECT_EQ(fs[1].line, 3);
}

// ---------------------------------------------------------------------
// Engine mechanics: comments, strings, rule restriction.
// ---------------------------------------------------------------------

TEST(LintEngine, CommentsAndStringsNeverMatchRules) {
  lint::LintEngine engine;
  const std::string src =
      "// system_clock in prose\n"
      "/* rand() in a block comment */\n"
      "const char* s = \"system_clock rand() shared_ptr\";\n";
  EXPECT_TRUE(engine.lint_source("src/sim/event.cpp", src).empty());
}

TEST(LintEngine, RestrictRulesUnknownIdRejected) {
  lint::LintEngine engine;
  EXPECT_FALSE(engine.restrict_rules({"no-such-rule"}));
  EXPECT_TRUE(engine.restrict_rules({"wall-clock"}));
  ASSERT_EQ(engine.rules().size(), 1u);
  EXPECT_EQ(engine.rules()[0]->id(), "wall-clock");
}

TEST(LintEngine, RuleCatalogCoversAllFamilies) {
  lint::LintEngine engine;
  const auto& rules = engine.rules();
  std::vector<std::string> ids;
  for (const auto& r : rules) ids.emplace_back(r->id());
  for (const char* want :
       {"wall-clock", "raw-rng", "unordered-iter", "fp-accum",
        "hot-path-function", "hot-path-shared-ptr", "hot-path-container",
        "deprecated-shim", "stderr-log", "pragma-once", "using-namespace",
        "std-include"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), want), ids.end()) << want;
  }
}

// ---------------------------------------------------------------------
// Project pass: layering contract over the include graph.
// ---------------------------------------------------------------------

TEST(LintProject, LayeringRejectsLowerIncludingHigher) {
  const auto fs =
      lint_project_fixtures({{"layering_low_bad.hpp", "src/sim/low.hpp"},
                             {"layering_high.hpp", "src/serve/high.hpp"}});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(lint::format_finding(fs[0]),
            "src/sim/low.hpp:7:1: error: [layering] 'src/sim/low.hpp' "
            "(layer sim) includes 'src/serve/high.hpp' (layer serve): "
            "lower layers must not include higher layers");
}

TEST(LintProject, LayeringAllowsHigherIncludingLower) {
  EXPECT_TRUE(
      lint_project_fixtures({{"layering_clean_low.hpp", "src/sim/low.hpp"},
                             {"layering_clean_high.hpp", "src/serve/high.hpp"}})
          .empty());
}

TEST(LintProject, LayeringRejectsIncludeCycle) {
  const auto fs = lint_project_fixtures(
      {{"layering_cycle_a.hpp", "src/core/cycle_a.hpp"},
       {"layering_cycle_b.hpp", "src/core/cycle_b.hpp"}});
  ASSERT_EQ(fs.size(), 1u);  // one finding per cycle, not per edge
  EXPECT_EQ(fs[0].rule, "layering");
  EXPECT_NE(fs[0].message.find("include cycle: src/core/cycle_a.hpp -> "
                               "src/core/cycle_b.hpp -> "
                               "src/core/cycle_a.hpp"),
            std::string::npos)
      << fs[0].message;
}

TEST(LintProject, LayeringWaiverSuppressesCrossLayerEdge) {
  lint::LintEngine engine;
  lint::LintStats stats;
  const std::vector<std::pair<std::string, std::string>> files = {
      {"src/sim/low.hpp",
       "#pragma once\n"
       "// lint: layering-ok\n"
       "#include \"serve/high.hpp\"\n"},
      {"src/serve/high.hpp", "#pragma once\n"},
  };
  EXPECT_TRUE(engine.lint_project(files, &stats).empty());
  EXPECT_EQ(stats.waived, 1u);
}

TEST(LintProject, LayeringIgnoresUnresolvedAndUnclassifiedIncludes) {
  lint::LintEngine engine;
  // <mutex> and a header outside the project set are never edges; a
  // path outside the contract (layer -1) is never checked.
  const std::vector<std::pair<std::string, std::string>> files = {
      {"scripts/odd.hpp",
       "#pragma once\n#include <mutex>\n#include \"no/such.hpp\"\n"},
  };
  EXPECT_TRUE(engine.lint_project(files).empty());
}

// ---------------------------------------------------------------------
// Project pass: guarded_by lock discipline.
// ---------------------------------------------------------------------

TEST(LintProject, GuardedByRejectsUnguardedAccess) {
  const auto fs =
      lint_project_fixtures({{"guarded_by_bad.cpp", "src/serve/x.cpp"}});
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(lint::format_finding(fs[0]),
            "src/serve/x.cpp:9:24: error: [guarded-by] field 'count_' is "
            "guarded_by(mu_) but accessed without holding 'mu_' (in "
            "BadCounter::increment)");
}

TEST(LintProject, GuardedByAllowsLockedCtorAndRequiresAccess) {
  // Covers all three legal forms at once: lock_guard/scoped_lock held,
  // constructor body, and a // requires(mu_) annotated helper.
  EXPECT_TRUE(
      lint_project_fixtures({{"guarded_by_clean.cpp", "src/serve/x.cpp"}})
          .empty());
}

TEST(LintProject, GuardedByWaiverSuppresses) {
  lint::LintEngine engine;
  lint::LintStats stats;
  const std::vector<std::pair<std::string, std::string>> files = {
      {"src/serve/x.cpp",
       "#include <mutex>\n"
       "class C {\n"
       " public:\n"
       "  int peek() const { return count_; }  // lint: guarded-by-ok\n"
       " private:\n"
       "  mutable std::mutex mu_;\n"
       "  int count_ = 0;  // guarded_by(mu_)\n"
       "};\n"},
  };
  EXPECT_TRUE(engine.lint_project(files, &stats).empty());
  EXPECT_EQ(stats.waived, 1u);
}

TEST(LintProject, GuardedByChecksOutOfLineMethodsCrossTu) {
  lint::LintEngine engine;
  // The header declares + annotates; the .cpp defines the violating
  // method out of line. The registry is project-wide, so the finding
  // lands in the .cpp.
  const std::vector<std::pair<std::string, std::string>> files = {
      {"src/serve/c.hpp",
       "#pragma once\n"
       "#include <mutex>\n"
       "class C {\n"
       " public:\n"
       "  void bump();\n"
       " private:\n"
       "  std::mutex mu_;\n"
       "  int count_ = 0;  // guarded_by(mu_)\n"
       "};\n"},
      {"src/serve/c.cpp",
       "#include \"serve/c.hpp\"\n"
       "void C::bump() { ++count_; }\n"},
  };
  const auto fs = engine.lint_project(files);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "guarded-by");
  EXPECT_EQ(fs[0].path, "src/serve/c.cpp");
  EXPECT_EQ(fs[0].line, 2);
}

TEST(LintProject, GuardedByLambdaInheritsEnclosingLock) {
  lint::LintEngine engine;
  // The cv-wait predicate idiom: the lambda body runs under the lock
  // its enclosing scope holds, so the access is legal.
  const std::vector<std::pair<std::string, std::string>> files = {
      {"src/serve/x.cpp",
       "#include <condition_variable>\n"
       "#include <mutex>\n"
       "class C {\n"
       " public:\n"
       "  void wait_ready() {\n"
       "    std::unique_lock<std::mutex> lock(mu_);\n"
       "    cv_.wait(lock, [&] { return count_ > 0; });\n"
       "  }\n"
       " private:\n"
       "  std::mutex mu_;\n"
       "  std::condition_variable cv_;\n"
       "  int count_ = 0;  // guarded_by(mu_)\n"
       "};\n"},
  };
  EXPECT_TRUE(engine.lint_project(files).empty());
}

// ---------------------------------------------------------------------
// Project pass: cross-TU lock-order cycles.
// ---------------------------------------------------------------------

TEST(LintProject, LockOrderRejectsAbBaCycle) {
  const auto fs =
      lint_project_fixtures({{"lock_order_bad.cpp", "src/serve/x.cpp"}});
  // One finding per acquisition site in the cycle: the b_-after-a_ site
  // in ab() and the a_-after-b_ site in ba().
  ASSERT_EQ(fs.size(), 2u);
  EXPECT_EQ(fs[0].rule, "lock-order");
  EXPECT_EQ(fs[0].line, 11);
  EXPECT_NE(fs[0].message.find("lock-order cycle"), std::string::npos);
  EXPECT_NE(fs[0].message.find("'BadPair::b_' acquired while holding "
                               "'BadPair::a_' (in BadPair::ab)"),
            std::string::npos)
      << fs[0].message;
  EXPECT_EQ(fs[1].line, 17);
  EXPECT_NE(fs[1].message.find("'BadPair::a_' acquired while holding "
                               "'BadPair::b_' (in BadPair::ba)"),
            std::string::npos)
      << fs[1].message;
}

TEST(LintProject, LockOrderAllowsConsistentOrder) {
  EXPECT_TRUE(
      lint_project_fixtures({{"lock_order_clean.cpp", "src/serve/x.cpp"}})
          .empty());
}

TEST(LintProject, LockOrderCyclesDetectedAcrossFiles) {
  lint::LintEngine engine;
  // The two halves of the AB/BA pattern live in different TUs; the
  // acquisition graph is global, keyed on Class::member.
  const std::vector<std::pair<std::string, std::string>> files = {
      {"src/serve/a.cpp",
       "#include <mutex>\n"
       "struct P { std::mutex a_; std::mutex b_; };\n"
       "void ab(P& p) {\n"
       "  std::scoped_lock la(p.a_);\n"
       "  std::scoped_lock lb(p.b_);\n"
       "}\n"},
      {"src/serve/b.cpp",
       "#include <mutex>\n"
       "struct P { std::mutex a_; std::mutex b_; };\n"
       "void ba(P& p) {\n"
       "  std::scoped_lock lb(p.b_);\n"
       "  std::scoped_lock la(p.a_);\n"
       "}\n"},
  };
  const auto fs = engine.lint_project(files);
  ASSERT_EQ(fs.size(), 2u);
  for (const auto& f : fs) EXPECT_EQ(f.rule, "lock-order");
}

TEST(LintProject, LockOrderWaiverSuppressesSites) {
  lint::LintEngine engine;
  lint::LintStats stats;
  const std::vector<std::pair<std::string, std::string>> files = {
      {"src/serve/x.cpp",
       "#include <mutex>\n"
       "class P {\n"
       " public:\n"
       "  void ab() {\n"
       "    std::lock_guard<std::mutex> la(a_);\n"
       "    std::lock_guard<std::mutex> lb(b_);  // lint: lock-order-ok\n"
       "  }\n"
       "  void ba() {\n"
       "    std::lock_guard<std::mutex> lb(b_);\n"
       "    std::lock_guard<std::mutex> la(a_);  // lint: lock-order-ok\n"
       "  }\n"
       " private:\n"
       "  std::mutex a_;\n"
       "  std::mutex b_;\n"
       "};\n"},
  };
  EXPECT_TRUE(engine.lint_project(files, &stats).empty());
  EXPECT_EQ(stats.waived, 2u);
}

// ---------------------------------------------------------------------
// Project rules: catalog and restriction plumbing.
// ---------------------------------------------------------------------

TEST(LintProjectEngine, CatalogHasAllThreeRules) {
  lint::LintEngine engine;
  std::vector<std::string> ids;
  for (const auto& r : engine.project_rules()) ids.emplace_back(r->id());
  EXPECT_EQ(ids,
            (std::vector<std::string>{"layering", "guarded-by", "lock-order"}));
}

TEST(LintProjectEngine, RestrictToProjectRuleKeepsOnlyIt) {
  lint::LintEngine engine;
  EXPECT_TRUE(engine.restrict_rules({"guarded-by"}));
  EXPECT_TRUE(engine.rules().empty());
  ASSERT_EQ(engine.project_rules().size(), 1u);
  EXPECT_EQ(engine.project_rules()[0]->id(), "guarded-by");
}

TEST(LintProjectEngine, DisableRemovesRuleAndRejectsUnknown) {
  lint::LintEngine engine;
  const std::size_t file_rules = engine.rules().size();
  EXPECT_FALSE(engine.disable_rules({"no-such-rule"}));
  EXPECT_TRUE(engine.disable_rules({"lock-order", "wall-clock"}));
  EXPECT_EQ(engine.rules().size(), file_rules - 1);
  EXPECT_EQ(engine.project_rules().size(), 2u);
}

// ---------------------------------------------------------------------
// CLI: exit codes mirror bench_report (0 clean / 1 findings / 2 usage).
// ---------------------------------------------------------------------

TEST(LintCli, CleanFileExitsZero) {
  std::string out;
  const int rc = run_cli({"--root=" PCKPT_LINT_FIXTURE_DIR,
                          "wall_clock_clean.cpp"},
                         &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("0 errors"), std::string::npos);
}

TEST(LintCli, ViolationExitsOneWithDiagnostics) {
  std::string out, err;
  const int rc = run_cli({"--root=" PCKPT_LINT_FIXTURE_DIR,
                          "wall_clock_bad.cpp"},
                         &out, &err);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(err.find("wall_clock_bad.cpp:6:"), std::string::npos);
  EXPECT_NE(err.find("[wall-clock]"), std::string::npos);
}

TEST(LintCli, MissingPathExitsTwo) {
  std::string err;
  EXPECT_EQ(run_cli({"no/such/path.cpp"}, nullptr, &err), 2);
  EXPECT_NE(err.find("no such file"), std::string::npos);
}

TEST(LintCli, UnknownOptionExitsTwo) {
  EXPECT_EQ(run_cli({"--bogus"}), 2);
}

TEST(LintCli, UnknownRuleIdExitsTwo) {
  EXPECT_EQ(run_cli({"--rule=no-such-rule", "."}), 2);
}

TEST(LintCli, NoPathsExitsTwo) { EXPECT_EQ(run_cli({}), 2); }

TEST(LintCli, ListRulesExitsZero) {
  std::string out;
  EXPECT_EQ(run_cli({"--list-rules"}, &out), 0);
  EXPECT_NE(out.find("wall-clock"), std::string::npos);
  EXPECT_NE(out.find("std-include"), std::string::npos);
}

TEST(LintCli, ListRulesIncludesProjectRules) {
  std::string out;
  EXPECT_EQ(run_cli({"--list-rules"}, &out), 0);
  EXPECT_NE(out.find("layering"), std::string::npos);
  EXPECT_NE(out.find("guarded-by"), std::string::npos);
  EXPECT_NE(out.find("lock-order"), std::string::npos);
  EXPECT_NE(out.find("project-wide"), std::string::npos);
}

TEST(LintCli, NoRuleDisablesNamedRule) {
  // The wall-clock fixture is a violation, but not with its rule off.
  EXPECT_EQ(run_cli({"--root=" PCKPT_LINT_FIXTURE_DIR,
                     "--no-rule=wall-clock", "wall_clock_bad.cpp"}),
            0);
}

TEST(LintCli, UnknownNoRuleExitsTwo) {
  EXPECT_EQ(run_cli({"--no-rule=no-such-rule", "."}), 2);
}

TEST(LintCli, ProjectPassRunsFromCli) {
  std::string err;
  const int rc = run_cli({"--root=" PCKPT_LINT_FIXTURE_DIR,
                          "guarded_by_bad.cpp"},
                         nullptr, &err);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(err.find("[guarded-by]"), std::string::npos) << err;
  EXPECT_NE(err.find("guarded_by_bad.cpp:9:"), std::string::npos) << err;
}

TEST(LintCli, TextSummaryReportsElapsedTime) {
  std::string out;
  run_cli({"--root=" PCKPT_LINT_FIXTURE_DIR, "wall_clock_clean.cpp"}, &out);
  EXPECT_NE(out.find(" ms)"), std::string::npos) << out;
}

TEST(LintCli, FormatJsonEmitsSchemaDocument) {
  std::string out;
  const int rc = run_cli({"--root=" PCKPT_LINT_FIXTURE_DIR, "--format=json",
                          "wall_clock_clean.cpp"},
                         &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("\"schema\":\"pckpt-lint/1\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"findings\":["), std::string::npos) << out;
}

TEST(LintCli, FormatJsonKeepsFindingsAndExitCode) {
  std::string out, err;
  const int rc = run_cli({"--root=" PCKPT_LINT_FIXTURE_DIR, "--format=json",
                          "wall_clock_bad.cpp"},
                         &out, &err);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.find("\"rule\":\"wall-clock\""), std::string::npos) << out;
  // Machine formats own stdout/stderr entirely; no text diagnostics.
  EXPECT_TRUE(err.empty()) << err;
}

TEST(LintCli, FormatSarifEmitsValidLog) {
  std::string out;
  const int rc = run_cli({"--root=" PCKPT_LINT_FIXTURE_DIR, "--format=sarif",
                          "wall_clock_bad.cpp"},
                         &out);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.find("\"version\":\"2.1.0\""), std::string::npos) << out;
  EXPECT_NE(out.find("sarif-2.1.0.json"), std::string::npos) << out;
  EXPECT_NE(out.find("\"ruleId\":\"wall-clock\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"startLine\":6"), std::string::npos) << out;
}

TEST(LintCli, FormatSarifListsProjectRulesInDriver) {
  std::string out;
  run_cli({"--root=" PCKPT_LINT_FIXTURE_DIR, "--format=sarif",
           "wall_clock_clean.cpp"},
          &out);
  EXPECT_NE(out.find("\"id\":\"layering\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"id\":\"lock-order\""), std::string::npos) << out;
}

TEST(LintCli, UnknownFormatExitsTwo) {
  std::string err;
  EXPECT_EQ(run_cli({"--format=yaml", "."}, nullptr, &err), 2);
  EXPECT_NE(err.find("unknown format"), std::string::npos) << err;
}

// ---------------------------------------------------------------------
// The gate: the real tree lints clean.
// ---------------------------------------------------------------------

TEST(LintTree, RealTreeHasZeroFindings) {
  std::string out, err;
  const int rc = run_cli({"--root=" PCKPT_SOURCE_DIR, "src", "tools", "bench",
                          "tests", "examples"},
                         &out, &err);
  EXPECT_EQ(rc, 0) << err;
  EXPECT_NE(out.find("0 errors, 0 warnings"), std::string::npos) << out;
}

}  // namespace
