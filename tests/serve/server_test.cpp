#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.hpp"
#include "exec/fair_share.hpp"
#include "failure/system_catalog.hpp"
#include "obs/json_value.hpp"
#include "obs/runtime_log.hpp"
#include "serve/protocol.hpp"
#include "serve/telemetry.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace pckpt::serve {
namespace {

core::Scenario summit_scenario() {
  core::Scenario s;
  s.machine = workload::summit();
  s.applications = workload::summit_workloads();
  s.system = failure::system_by_name("titan");
  return s;
}

/// Full in-process daemon: store + planner + server on a temp socket,
/// run() on a background thread. Sockets live in /tmp (sun_path caps
/// paths at ~107 bytes; TempDir can exceed that under some runners).
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string tag = std::to_string(::getpid());
    socket_path_ = "/tmp/pckpt_srv_" + tag + ".sock";
    store_path_ = testing::TempDir() + "pckpt_server_store_" + tag;
    ::unlink(store_path_.c_str());
    ::unlink((store_path_ + ".journal").c_str());
    store_ = std::make_unique<ResultStore>(store_path_);
    planner_ = std::make_unique<Planner>(summit_scenario(),
                                         AdmissionConfig{}, *store_);
    server_ = std::make_unique<Server>(socket_path_, *planner_);
    runner_ = std::thread([this] { server_->run(); });
  }
  void TearDown() override {
    server_->stop();
    runner_.join();
    server_.reset();
    planner_.reset();
    store_.reset();
    ::unlink(store_path_.c_str());
    ::unlink((store_path_ + ".journal").c_str());
  }

  /// One-shot request: send a line, read response lines until the
  /// terminal (non-progress) one, return all of them.
  std::vector<std::string> roundtrip(const std::string& request) {
    Client client(socket_path_);
    client.send_line(request);
    std::vector<std::string> lines;
    while (auto line = client.read_line()) {
      const bool progress = line->rfind("{\"ev\":\"progress\"", 0) == 0;
      lines.push_back(std::move(*line));
      if (!progress) break;
    }
    return lines;
  }

  std::string socket_path_;
  std::string store_path_;
  std::unique_ptr<ResultStore> store_;
  std::unique_ptr<Planner> planner_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
};

TEST_F(ServerTest, PingPong) {
  const auto lines = roundtrip(R"({"op":"ping"})");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], R"({"ev":"pong","version":"pckpt-serve/2"})");
}

TEST_F(ServerTest, V1SingleQueryLineShapeUnchanged) {
  // The v2 banner bump is additive: a v1 client's single-query request
  // still gets the v1 result line, and the memoized payload keeps its
  // own v1 schema pin (stored bytes are stable across the bump).
  const auto lines = roundtrip(R"({"op":"query","model":"P1","app":"VULCAN"})");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind(R"({"ev":"result","key":")", 0), 0u);
  const auto payload = extract_payload(lines[0]);
  ASSERT_TRUE(payload.has_value());
  EXPECT_NE(payload->find(R"("schema":"pckpt-serve/1")"), std::string::npos);
}

TEST_F(ServerTest, MalformedLineYieldsError400) {
  const auto lines = roundtrip("this is not json");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind(R"({"ev":"error","code":400)", 0), 0u);
}

TEST_F(ServerTest, UnknownApplicationYields404) {
  const auto lines =
      roundtrip(R"({"op":"query","model":"P1","app":"NOSUCH"})");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind(R"({"ev":"error","code":404)", 0), 0u);
}

TEST_F(ServerTest, EstimateMissThenHitSamePayloadBytes) {
  const std::string q = R"({"op":"query","model":"P1","app":"VULCAN"})";
  const auto miss = roundtrip(q);
  const auto hit = roundtrip(q);
  ASSERT_EQ(miss.size(), 1u);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_NE(miss[0].find(R"("cached":false)"), std::string::npos);
  EXPECT_NE(hit[0].find(R"("cached":true)"), std::string::npos);
  const auto p_miss = extract_payload(miss[0]);
  const auto p_hit = extract_payload(hit[0]);
  ASSERT_TRUE(p_miss && p_hit);
  EXPECT_EQ(*p_miss, *p_hit);
}

TEST_F(ServerTest, ExactQueryStreamsProgressAndMemoizes) {
  const std::string q =
      R"({"op":"query","mode":"exact","model":"P2","app":"VULCAN",)"
      R"("runs":8,"seed":7,"progress":true})";
  const auto miss = roundtrip(q);
  ASSERT_GE(miss.size(), 2u) << "expected at least one progress line";
  for (std::size_t i = 0; i + 1 < miss.size(); ++i) {
    EXPECT_EQ(miss[i].rfind(R"({"ev":"progress")", 0), 0u);
  }
  const std::string& result = miss.back();
  EXPECT_NE(result.find(R"("tier":"exact")"), std::string::npos);
  EXPECT_NE(result.find(R"("cached":false)"), std::string::npos);

  const auto hit = roundtrip(q);
  // Cache hits skip the campaign entirely — no progress lines.
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_NE(hit[0].find(R"("cached":true)"), std::string::npos);
  EXPECT_EQ(*extract_payload(hit[0]), *extract_payload(result));
}

TEST_F(ServerTest, StatsReflectTraffic) {
  roundtrip(R"({"op":"query","model":"M2","app":"VULCAN"})");
  roundtrip(R"({"op":"query","model":"M2","app":"VULCAN"})");
  const auto lines = roundtrip(R"({"op":"stats"})");
  ASSERT_EQ(lines.size(), 1u);
  const auto doc = obs::parse_json(lines[0]);
  EXPECT_EQ(doc.key_u64("hits"), 1u);
  EXPECT_EQ(doc.key_u64("estimate_misses"), 1u);
  EXPECT_EQ(doc.key_u64("records"), 1u);
  EXPECT_GT(*doc.key_u64("log_bytes"), 0u);
}

TEST_F(ServerTest, StatsCarryDaemonIdentityFields) {
  roundtrip(R"({"op":"ping"})");
  const auto lines = roundtrip(R"({"op":"stats"})");
  ASSERT_EQ(lines.size(), 1u);
  const auto doc = obs::parse_json(lines[0]);
  EXPECT_EQ(doc.key_string("version"), std::string(kServeVersion));
  ASSERT_TRUE(doc.key_u64("uptime_s").has_value());
  // ping + this stats request have both been counted by now.
  EXPECT_GE(*doc.key_u64("requests_total"), 2u);
}

TEST_F(ServerTest, MetricsOpRejectedWhenTelemetryDisabled) {
  // The fixture's server has no Telemetry — the disabled path must
  // refuse the op rather than fabricate an empty snapshot.
  const auto lines = roundtrip(R"({"op":"metrics"})");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind(R"({"ev":"error","code":503)", 0), 0u);
}

TEST_F(ServerTest, ConcurrentClientsAllAnswered) {
  constexpr int kClients = 8;
  std::vector<std::string> payloads(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, i, &payloads] {
      // Half share one query (exercising concurrent memoization of the
      // same key), half are distinct.
      const std::string app = (i % 2 == 0) ? "VULCAN" : "POP";
      Client client(socket_path_);
      client.send_line(R"({"op":"query","model":"P1","app":")" + app +
                       R"("})");
      if (auto line = client.read_line()) {
        if (auto p = extract_payload(*line)) payloads[static_cast<std::size_t>(i)] = std::string(*p);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    ASSERT_FALSE(payloads[static_cast<std::size_t>(i)].empty()) << i;
    // Same app -> byte-identical payload regardless of which client
    // computed it and which hit the cache.
    EXPECT_EQ(payloads[static_cast<std::size_t>(i)],
              payloads[static_cast<std::size_t>(i % 2)]);
  }
}

TEST_F(ServerTest, BatchAnswersEntriesInOrderWithPartialFailure) {
  // Single-query reference: entry 0 must return the same memoized bytes
  // the v1 API returns for the identical query.
  const auto single =
      roundtrip(R"({"op":"query","model":"P1","app":"VULCAN"})");
  ASSERT_EQ(single.size(), 1u);
  const auto single_payload = extract_payload(single[0]);
  ASSERT_TRUE(single_payload.has_value());
  const std::string ref(*single_payload);

  Client client(socket_path_);
  client.send_line(
      R"({"op":"batch","queries":[)"
      R"({"model":"P1","app":"VULCAN"},)"
      R"({"model":"P1","app":"NOSUCH"},)"
      R"({"mode":"exact","model":"P2","app":"VULCAN","runs":8,"seed":7}]})");
  std::vector<std::string> lines;
  while (auto line = client.read_line()) {
    const bool done = line->rfind("{\"ev\":\"batch\"", 0) == 0;
    lines.push_back(std::move(*line));
    if (done) break;
  }
  ASSERT_EQ(lines.size(), 4u);

  // Entry 0: a cache hit with bytes identical to the single-query API.
  EXPECT_EQ(lines[0].rfind(R"({"ev":"entry","i":0,"status":200)", 0), 0u);
  EXPECT_NE(lines[0].find(R"("cached":true)"), std::string::npos);
  const auto p0 = extract_payload(lines[0]);
  ASSERT_TRUE(p0.has_value());
  EXPECT_EQ(*p0, ref);

  // Entry 1: semantic failure stays per-entry — the others still answer.
  EXPECT_EQ(lines[1].rfind(R"({"ev":"entry","i":1,"status":404)", 0), 0u);
  EXPECT_FALSE(extract_payload(lines[1]).has_value());

  // Entry 2: a fresh exact campaign.
  EXPECT_EQ(lines[2].rfind(R"({"ev":"entry","i":2,"status":200)", 0), 0u);
  EXPECT_NE(lines[2].find(R"("tier":"exact")"), std::string::npos);
  EXPECT_NE(lines[2].find(R"("cached":false)"), std::string::npos);
  ASSERT_TRUE(extract_payload(lines[2]).has_value());

  EXPECT_EQ(lines[3], R"({"ev":"batch","n":3,"ok":2})");
}

TEST_F(ServerTest, BatchParseErrorFailsTheWholeRequest) {
  // An unknown member in ANY entry is a whole-request 400: nothing runs.
  const auto lines = roundtrip(
      R"({"op":"batch","queries":[)"
      R"({"model":"P1","app":"VULCAN"},)"
      R"({"model":"P1","app":"VULCAN","bogus":1}]})");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind(R"({"ev":"error","code":400)", 0), 0u);
  EXPECT_NE(lines[0].find("queries[1]"), std::string::npos);
  const auto stats = roundtrip(R"({"op":"stats"})");
  const auto doc = obs::parse_json(stats[0]);
  EXPECT_EQ(doc.key_u64("estimate_misses"), 0u);
}

TEST_F(ServerTest, BatchRejectsEntryProgressAndEmptyQueries) {
  const auto progress = roundtrip(
      R"({"op":"batch","queries":[{"model":"P1","app":"VULCAN",)"
      R"("progress":true}]})");
  ASSERT_EQ(progress.size(), 1u);
  EXPECT_EQ(progress[0].rfind(R"({"ev":"error","code":400)", 0), 0u);

  const auto empty = roundtrip(R"({"op":"batch","queries":[]})");
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_EQ(empty[0].rfind(R"({"ev":"error","code":400)", 0), 0u);
}

TEST_F(ServerTest, ShutdownOpStopsTheServer) {
  const auto lines = roundtrip(R"({"op":"shutdown"})");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], R"({"ev":"bye"})");
  runner_.join();  // run() must return promptly after the shutdown op
  runner_ = std::thread([] {});  // keep TearDown's join() valid
}

// ---------------------------------------------------------------------
// Scale-out daemon: shared fair-share scheduler + in-flight dedup.
// ---------------------------------------------------------------------

/// In-process daemon wired the way pckpt_serve --jobs wires it: one
/// FairShareScheduler shared by every admitted campaign, and admission
/// generous enough that concurrency comes from the pool, not the gate.
class ScaleOutServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string tag = std::to_string(::getpid()) + "_s";
    socket_path_ = "/tmp/pckpt_srv_" + tag + ".sock";
    store_path_ = testing::TempDir() + "pckpt_server_store_" + tag;
    ::unlink(store_path_.c_str());
    ::unlink((store_path_ + ".journal").c_str());
    store_ = std::make_unique<ResultStore>(store_path_);
    // One worker: strict round-robin makes campaign interleaving
    // observable; dedup behaviour does not depend on the pool size.
    scheduler_ = std::make_unique<exec::FairShareScheduler>(1);
    AdmissionConfig admission;
    admission.max_inflight = 4;
    admission.queue_limit = 8;
    admission.wait_ms = 30000;
    planner_ = std::make_unique<Planner>(summit_scenario(), admission, *store_,
                                         /*checkpoint_dir=*/"",
                                         scheduler_.get());
    server_ = std::make_unique<Server>(socket_path_, *planner_);
    runner_ = std::thread([this] { server_->run(); });
  }
  void TearDown() override {
    server_->stop();
    runner_.join();
    server_.reset();
    planner_.reset();
    scheduler_.reset();
    store_.reset();
    ::unlink(store_path_.c_str());
    ::unlink((store_path_ + ".journal").c_str());
  }

  std::vector<std::string> roundtrip(const std::string& request) {
    Client client(socket_path_);
    client.send_line(request);
    std::vector<std::string> lines;
    while (auto line = client.read_line()) {
      const bool progress = line->rfind("{\"ev\":\"progress\"", 0) == 0;
      lines.push_back(std::move(*line));
      if (!progress) break;
    }
    return lines;
  }

  std::string socket_path_;
  std::string store_path_;
  std::unique_ptr<ResultStore> store_;
  std::unique_ptr<exec::FairShareScheduler> scheduler_;
  std::unique_ptr<Planner> planner_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
};

TEST_F(ScaleOutServerTest, ConcurrentIdenticalExactMissesCoalesce) {
  // 640 trials = 80 shards: the campaign runs long enough that clients
  // attaching after its FIRST shard completion are far inside its
  // lifetime. The leader streams progress; its first progress line is
  // the cue that the campaign is running.
  const std::string q =
      R"({"op":"query","mode":"exact","model":"P2","app":"VULCAN",)"
      R"("runs":640,"seed":11,"progress":true})";
  Client leader(socket_path_);
  leader.send_line(q);
  const auto first = leader.read_line();
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->rfind(R"({"ev":"progress")", 0), 0u);

  // Three identical queries while the campaign runs: all must coalesce
  // onto the in-flight one — no second campaign, and the leader's shard
  // completions stream to every follower.
  constexpr int kFollowers = 3;
  std::vector<std::string> results(kFollowers);
  std::vector<std::size_t> progress_seen(kFollowers, 0);
  std::vector<std::thread> threads;
  threads.reserve(kFollowers);
  for (int i = 0; i < kFollowers; ++i) {
    threads.emplace_back([this, i, &q, &results, &progress_seen] {
      const auto idx = static_cast<std::size_t>(i);
      Client c(socket_path_);
      c.send_line(q);
      while (auto line = c.read_line()) {
        if (line->rfind(R"({"ev":"progress")", 0) == 0) {
          ++progress_seen[idx];
          continue;
        }
        results[idx] = std::move(*line);
        break;
      }
    });
  }
  std::string leader_result;
  while (auto line = leader.read_line()) {
    if (line->rfind(R"({"ev":"progress")", 0) == 0) continue;
    leader_result = std::move(*line);
    break;
  }
  for (auto& t : threads) t.join();

  ASSERT_EQ(leader_result.rfind(R"({"ev":"result")", 0), 0u);
  EXPECT_NE(leader_result.find(R"("cached":false)"), std::string::npos);
  const auto ref = extract_payload(leader_result);
  ASSERT_TRUE(ref.has_value());
  for (int i = 0; i < kFollowers; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    ASSERT_FALSE(results[idx].empty()) << "follower " << i;
    // Followers are served by the in-flight campaign, not the store:
    // cached:false, payload bytes identical to the leader's.
    EXPECT_NE(results[idx].find(R"("cached":false)"), std::string::npos)
        << "follower " << i;
    const auto p = extract_payload(results[idx]);
    ASSERT_TRUE(p.has_value()) << "follower " << i;
    EXPECT_EQ(*p, *ref) << "follower " << i;
    EXPECT_GT(progress_seen[idx], 0u)
        << "follower " << i << " saw none of the leader's shard completions";
  }

  // One campaign total; every duplicate counted as a dedup hit — and a
  // cold read of the memoized store returns the same bytes again.
  const auto stats = roundtrip(R"({"op":"stats"})");
  ASSERT_EQ(stats.size(), 1u);
  const auto doc = obs::parse_json(stats[0]);
  EXPECT_EQ(doc.key_u64("exact_misses"), 1u);
  EXPECT_EQ(doc.key_u64("dedup_hits"),
            static_cast<std::uint64_t>(kFollowers));
  const auto hit = roundtrip(
      R"({"op":"query","mode":"exact","model":"P2","app":"VULCAN",)"
      R"("runs":640,"seed":11})");
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_NE(hit[0].find(R"("cached":true)"), std::string::npos);
  EXPECT_EQ(*extract_payload(hit[0]), *ref);
}

TEST_F(ScaleOutServerTest, ConcurrentCampaignsInterleaveShardCompletions) {
  using Clock = std::chrono::steady_clock;
  // Campaign A holds the single worker first; B arrives mid-flight. With
  // round-robin fair share, B's first shard completes while A still has
  // most of its shards left. (A FIFO pool would run all 40 of A's shards
  // before B's first — making this assertion fail.)
  const std::string qa =
      R"({"op":"query","mode":"exact","model":"P2","app":"VULCAN",)"
      R"("runs":320,"seed":21,"progress":true})";
  const std::string qb =
      R"({"op":"query","mode":"exact","model":"P2","app":"VULCAN",)"
      R"("runs":320,"seed":22,"progress":true})";

  Client a(socket_path_);
  a.send_line(qa);
  const auto first = a.read_line();
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->rfind(R"({"ev":"progress")", 0), 0u);

  Clock::time_point b_first{};
  bool b_done = false;
  std::thread tb([this, &qb, &b_first, &b_done] {
    Client b(socket_path_);
    b.send_line(qb);
    while (auto line = b.read_line()) {
      if (line->rfind(R"({"ev":"progress")", 0) == 0) {
        if (b_first == Clock::time_point{}) b_first = Clock::now();
        continue;
      }
      b_done = line->rfind(R"({"ev":"result")", 0) == 0;
      break;
    }
  });

  bool a_done = false;
  while (auto line = a.read_line()) {
    if (line->rfind(R"({"ev":"progress")", 0) == 0) continue;
    a_done = line->rfind(R"({"ev":"result")", 0) == 0;
    break;
  }
  const Clock::time_point a_finished = Clock::now();
  tb.join();

  ASSERT_TRUE(a_done);
  ASSERT_TRUE(b_done);
  ASSERT_NE(b_first, Clock::time_point{}) << "campaign B streamed no progress";
  EXPECT_LT(b_first, a_finished)
      << "fair share: B's first shard must complete while A still runs";
}

// ---------------------------------------------------------------------
// Telemetry-enabled daemon: the metrics op and per-tier histograms.
// ---------------------------------------------------------------------

/// Same in-process daemon, but with a Telemetry attached (log to a temp
/// file so the suite can assert on emitted records).
class TelemetryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string tag = std::to_string(::getpid()) + "_t";
    socket_path_ = "/tmp/pckpt_srv_" + tag + ".sock";
    store_path_ = testing::TempDir() + "pckpt_server_store_" + tag;
    log_path_ = testing::TempDir() + "pckpt_server_log_" + tag + ".ndjson";
    ::unlink(store_path_.c_str());
    ::unlink((store_path_ + ".journal").c_str());
    ::unlink(log_path_.c_str());
    log_ = std::make_unique<obs::RuntimeLog>(obs::LogLevel::kDebug);
    ASSERT_TRUE(log_->open_file(log_path_));
    telemetry_ = std::make_unique<Telemetry>(*log_);
    store_ = std::make_unique<ResultStore>(store_path_);
    // Mirror pckpt_serve's wiring: surface the store's recovery outcome
    // as the first telemetry record of the daemon's life.
    const auto st = store_->stats();
    telemetry_->record_recover("store", st.replayed_journal,
                               st.truncated_bytes, st.log_records,
                               st.recover_us);
    planner_ = std::make_unique<Planner>(summit_scenario(),
                                         AdmissionConfig{}, *store_);
    server_ =
        std::make_unique<Server>(socket_path_, *planner_, telemetry_.get());
    runner_ = std::thread([this] { server_->run(); });
  }
  void TearDown() override {
    server_->stop();
    runner_.join();
    server_.reset();
    planner_.reset();
    store_.reset();
    telemetry_.reset();
    log_.reset();
    ::unlink(store_path_.c_str());
    ::unlink((store_path_ + ".journal").c_str());
    ::unlink(log_path_.c_str());
  }

  std::vector<std::string> roundtrip(const std::string& request) {
    Client client(socket_path_);
    client.send_line(request);
    std::vector<std::string> lines;
    while (auto line = client.read_line()) {
      const bool progress = line->rfind("{\"ev\":\"progress\"", 0) == 0;
      lines.push_back(std::move(*line));
      if (!progress) break;
    }
    return lines;
  }

  std::string socket_path_;
  std::string store_path_;
  std::string log_path_;
  std::unique_ptr<obs::RuntimeLog> log_;
  std::unique_ptr<Telemetry> telemetry_;
  std::unique_ptr<ResultStore> store_;
  std::unique_ptr<Planner> planner_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
};

TEST_F(TelemetryServerTest, MetricsSnapshotCarriesPerTierQuantiles) {
  // estimate miss -> hit -> exact miss: all three planner tiers.
  roundtrip(R"({"op":"query","model":"P1","app":"VULCAN"})");
  roundtrip(R"({"op":"query","model":"P1","app":"VULCAN"})");
  roundtrip(
      R"({"op":"query","mode":"exact","model":"P2","app":"VULCAN",)"
      R"("runs":4,"seed":3})");

  const auto lines = roundtrip(R"({"op":"metrics"})");
  ASSERT_EQ(lines.size(), 1u);
  const auto doc = obs::parse_json(lines[0]);
  EXPECT_EQ(doc.key_string("ev"), "metrics");
  EXPECT_EQ(doc.key_string("version"), std::string(kServeVersion));

  const obs::JsonValue* lat = doc.get("latencies");
  ASSERT_NE(lat, nullptr);
  ASSERT_TRUE(lat->is_object());
  for (const char* name :
       {"req.us.hit", "req.us.estimate_miss", "req.us.exact_miss"}) {
    const obs::JsonValue* h = lat->get(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_EQ(h->key_u64("count"), 1u) << name;
    ASSERT_TRUE(h->key_number("p50_us").has_value()) << name;
    ASSERT_TRUE(h->key_number("p90_us").has_value()) << name;
    ASSERT_TRUE(h->key_number("p99_us").has_value()) << name;
    EXPECT_GE(*h->key_number("p99_us"), *h->key_number("p50_us")) << name;
  }

  // The Prometheus exposition rides along as an escaped text member.
  const auto prom = doc.key_string("prom");
  ASSERT_TRUE(prom.has_value());
  EXPECT_NE(prom->find("# TYPE pckpt_requests_total counter"),
            std::string::npos);
  EXPECT_NE(prom->find("pckpt_req_us_hit{quantile=\"0.99\"}"),
            std::string::npos);
}

TEST_F(TelemetryServerTest, RequestRecordsReachTheLogFile) {
  roundtrip(R"({"op":"ping"})");
  server_->stop();
  runner_.join();
  runner_ = std::thread([] {});
  std::ifstream in(log_path_);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("\"event\":\"journal.recover\""), std::string::npos);
  EXPECT_NE(all.find("\"event\":\"request.done\""), std::string::npos);
  EXPECT_NE(all.find("\"op\":\"ping\""), std::string::npos);
}

}  // namespace
}  // namespace pckpt::serve
