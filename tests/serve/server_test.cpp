#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.hpp"
#include "failure/system_catalog.hpp"
#include "obs/json_value.hpp"
#include "obs/runtime_log.hpp"
#include "serve/protocol.hpp"
#include "serve/telemetry.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace pckpt::serve {
namespace {

core::Scenario summit_scenario() {
  core::Scenario s;
  s.machine = workload::summit();
  s.applications = workload::summit_workloads();
  s.system = failure::system_by_name("titan");
  return s;
}

/// Full in-process daemon: store + planner + server on a temp socket,
/// run() on a background thread. Sockets live in /tmp (sun_path caps
/// paths at ~107 bytes; TempDir can exceed that under some runners).
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string tag = std::to_string(::getpid());
    socket_path_ = "/tmp/pckpt_srv_" + tag + ".sock";
    store_path_ = testing::TempDir() + "pckpt_server_store_" + tag;
    ::unlink(store_path_.c_str());
    ::unlink((store_path_ + ".journal").c_str());
    store_ = std::make_unique<ResultStore>(store_path_);
    planner_ = std::make_unique<Planner>(summit_scenario(),
                                         AdmissionConfig{}, *store_);
    server_ = std::make_unique<Server>(socket_path_, *planner_);
    runner_ = std::thread([this] { server_->run(); });
  }
  void TearDown() override {
    server_->stop();
    runner_.join();
    server_.reset();
    planner_.reset();
    store_.reset();
    ::unlink(store_path_.c_str());
    ::unlink((store_path_ + ".journal").c_str());
  }

  /// One-shot request: send a line, read response lines until the
  /// terminal (non-progress) one, return all of them.
  std::vector<std::string> roundtrip(const std::string& request) {
    Client client(socket_path_);
    client.send_line(request);
    std::vector<std::string> lines;
    while (auto line = client.read_line()) {
      const bool progress = line->rfind("{\"ev\":\"progress\"", 0) == 0;
      lines.push_back(std::move(*line));
      if (!progress) break;
    }
    return lines;
  }

  std::string socket_path_;
  std::string store_path_;
  std::unique_ptr<ResultStore> store_;
  std::unique_ptr<Planner> planner_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
};

TEST_F(ServerTest, PingPong) {
  const auto lines = roundtrip(R"({"op":"ping"})");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], R"({"ev":"pong","version":"pckpt-serve/1"})");
}

TEST_F(ServerTest, MalformedLineYieldsError400) {
  const auto lines = roundtrip("this is not json");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind(R"({"ev":"error","code":400)", 0), 0u);
}

TEST_F(ServerTest, UnknownApplicationYields404) {
  const auto lines =
      roundtrip(R"({"op":"query","model":"P1","app":"NOSUCH"})");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind(R"({"ev":"error","code":404)", 0), 0u);
}

TEST_F(ServerTest, EstimateMissThenHitSamePayloadBytes) {
  const std::string q = R"({"op":"query","model":"P1","app":"VULCAN"})";
  const auto miss = roundtrip(q);
  const auto hit = roundtrip(q);
  ASSERT_EQ(miss.size(), 1u);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_NE(miss[0].find(R"("cached":false)"), std::string::npos);
  EXPECT_NE(hit[0].find(R"("cached":true)"), std::string::npos);
  const auto p_miss = extract_payload(miss[0]);
  const auto p_hit = extract_payload(hit[0]);
  ASSERT_TRUE(p_miss && p_hit);
  EXPECT_EQ(*p_miss, *p_hit);
}

TEST_F(ServerTest, ExactQueryStreamsProgressAndMemoizes) {
  const std::string q =
      R"({"op":"query","mode":"exact","model":"P2","app":"VULCAN",)"
      R"("runs":8,"seed":7,"progress":true})";
  const auto miss = roundtrip(q);
  ASSERT_GE(miss.size(), 2u) << "expected at least one progress line";
  for (std::size_t i = 0; i + 1 < miss.size(); ++i) {
    EXPECT_EQ(miss[i].rfind(R"({"ev":"progress")", 0), 0u);
  }
  const std::string& result = miss.back();
  EXPECT_NE(result.find(R"("tier":"exact")"), std::string::npos);
  EXPECT_NE(result.find(R"("cached":false)"), std::string::npos);

  const auto hit = roundtrip(q);
  // Cache hits skip the campaign entirely — no progress lines.
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_NE(hit[0].find(R"("cached":true)"), std::string::npos);
  EXPECT_EQ(*extract_payload(hit[0]), *extract_payload(result));
}

TEST_F(ServerTest, StatsReflectTraffic) {
  roundtrip(R"({"op":"query","model":"M2","app":"VULCAN"})");
  roundtrip(R"({"op":"query","model":"M2","app":"VULCAN"})");
  const auto lines = roundtrip(R"({"op":"stats"})");
  ASSERT_EQ(lines.size(), 1u);
  const auto doc = obs::parse_json(lines[0]);
  EXPECT_EQ(doc.key_u64("hits"), 1u);
  EXPECT_EQ(doc.key_u64("estimate_misses"), 1u);
  EXPECT_EQ(doc.key_u64("records"), 1u);
  EXPECT_GT(*doc.key_u64("log_bytes"), 0u);
}

TEST_F(ServerTest, StatsCarryDaemonIdentityFields) {
  roundtrip(R"({"op":"ping"})");
  const auto lines = roundtrip(R"({"op":"stats"})");
  ASSERT_EQ(lines.size(), 1u);
  const auto doc = obs::parse_json(lines[0]);
  EXPECT_EQ(doc.key_string("version"), std::string(kServeVersion));
  ASSERT_TRUE(doc.key_u64("uptime_s").has_value());
  // ping + this stats request have both been counted by now.
  EXPECT_GE(*doc.key_u64("requests_total"), 2u);
}

TEST_F(ServerTest, MetricsOpRejectedWhenTelemetryDisabled) {
  // The fixture's server has no Telemetry — the disabled path must
  // refuse the op rather than fabricate an empty snapshot.
  const auto lines = roundtrip(R"({"op":"metrics"})");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind(R"({"ev":"error","code":503)", 0), 0u);
}

TEST_F(ServerTest, ConcurrentClientsAllAnswered) {
  constexpr int kClients = 8;
  std::vector<std::string> payloads(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, i, &payloads] {
      // Half share one query (exercising concurrent memoization of the
      // same key), half are distinct.
      const std::string app = (i % 2 == 0) ? "VULCAN" : "POP";
      Client client(socket_path_);
      client.send_line(R"({"op":"query","model":"P1","app":")" + app +
                       R"("})");
      if (auto line = client.read_line()) {
        if (auto p = extract_payload(*line)) payloads[static_cast<std::size_t>(i)] = std::string(*p);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    ASSERT_FALSE(payloads[static_cast<std::size_t>(i)].empty()) << i;
    // Same app -> byte-identical payload regardless of which client
    // computed it and which hit the cache.
    EXPECT_EQ(payloads[static_cast<std::size_t>(i)],
              payloads[static_cast<std::size_t>(i % 2)]);
  }
}

TEST_F(ServerTest, ShutdownOpStopsTheServer) {
  const auto lines = roundtrip(R"({"op":"shutdown"})");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], R"({"ev":"bye"})");
  runner_.join();  // run() must return promptly after the shutdown op
  runner_ = std::thread([] {});  // keep TearDown's join() valid
}

// ---------------------------------------------------------------------
// Telemetry-enabled daemon: the metrics op and per-tier histograms.
// ---------------------------------------------------------------------

/// Same in-process daemon, but with a Telemetry attached (log to a temp
/// file so the suite can assert on emitted records).
class TelemetryServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string tag = std::to_string(::getpid()) + "_t";
    socket_path_ = "/tmp/pckpt_srv_" + tag + ".sock";
    store_path_ = testing::TempDir() + "pckpt_server_store_" + tag;
    log_path_ = testing::TempDir() + "pckpt_server_log_" + tag + ".ndjson";
    ::unlink(store_path_.c_str());
    ::unlink((store_path_ + ".journal").c_str());
    ::unlink(log_path_.c_str());
    log_ = std::make_unique<obs::RuntimeLog>(obs::LogLevel::kDebug);
    ASSERT_TRUE(log_->open_file(log_path_));
    telemetry_ = std::make_unique<Telemetry>(*log_);
    store_ = std::make_unique<ResultStore>(store_path_);
    // Mirror pckpt_serve's wiring: surface the store's recovery outcome
    // as the first telemetry record of the daemon's life.
    const auto st = store_->stats();
    telemetry_->record_recover("store", st.replayed_journal,
                               st.truncated_bytes, st.log_records,
                               st.recover_us);
    planner_ = std::make_unique<Planner>(summit_scenario(),
                                         AdmissionConfig{}, *store_);
    server_ =
        std::make_unique<Server>(socket_path_, *planner_, telemetry_.get());
    runner_ = std::thread([this] { server_->run(); });
  }
  void TearDown() override {
    server_->stop();
    runner_.join();
    server_.reset();
    planner_.reset();
    store_.reset();
    telemetry_.reset();
    log_.reset();
    ::unlink(store_path_.c_str());
    ::unlink((store_path_ + ".journal").c_str());
    ::unlink(log_path_.c_str());
  }

  std::vector<std::string> roundtrip(const std::string& request) {
    Client client(socket_path_);
    client.send_line(request);
    std::vector<std::string> lines;
    while (auto line = client.read_line()) {
      const bool progress = line->rfind("{\"ev\":\"progress\"", 0) == 0;
      lines.push_back(std::move(*line));
      if (!progress) break;
    }
    return lines;
  }

  std::string socket_path_;
  std::string store_path_;
  std::string log_path_;
  std::unique_ptr<obs::RuntimeLog> log_;
  std::unique_ptr<Telemetry> telemetry_;
  std::unique_ptr<ResultStore> store_;
  std::unique_ptr<Planner> planner_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
};

TEST_F(TelemetryServerTest, MetricsSnapshotCarriesPerTierQuantiles) {
  // estimate miss -> hit -> exact miss: all three planner tiers.
  roundtrip(R"({"op":"query","model":"P1","app":"VULCAN"})");
  roundtrip(R"({"op":"query","model":"P1","app":"VULCAN"})");
  roundtrip(
      R"({"op":"query","mode":"exact","model":"P2","app":"VULCAN",)"
      R"("runs":4,"seed":3})");

  const auto lines = roundtrip(R"({"op":"metrics"})");
  ASSERT_EQ(lines.size(), 1u);
  const auto doc = obs::parse_json(lines[0]);
  EXPECT_EQ(doc.key_string("ev"), "metrics");
  EXPECT_EQ(doc.key_string("version"), std::string(kServeVersion));

  const obs::JsonValue* lat = doc.get("latencies");
  ASSERT_NE(lat, nullptr);
  ASSERT_TRUE(lat->is_object());
  for (const char* name :
       {"req.us.hit", "req.us.estimate_miss", "req.us.exact_miss"}) {
    const obs::JsonValue* h = lat->get(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_EQ(h->key_u64("count"), 1u) << name;
    ASSERT_TRUE(h->key_number("p50_us").has_value()) << name;
    ASSERT_TRUE(h->key_number("p90_us").has_value()) << name;
    ASSERT_TRUE(h->key_number("p99_us").has_value()) << name;
    EXPECT_GE(*h->key_number("p99_us"), *h->key_number("p50_us")) << name;
  }

  // The Prometheus exposition rides along as an escaped text member.
  const auto prom = doc.key_string("prom");
  ASSERT_TRUE(prom.has_value());
  EXPECT_NE(prom->find("# TYPE pckpt_requests_total counter"),
            std::string::npos);
  EXPECT_NE(prom->find("pckpt_req_us_hit{quantile=\"0.99\"}"),
            std::string::npos);
}

TEST_F(TelemetryServerTest, RequestRecordsReachTheLogFile) {
  roundtrip(R"({"op":"ping"})");
  server_->stop();
  runner_.join();
  runner_ = std::thread([] {});
  std::ifstream in(log_path_);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("\"event\":\"journal.recover\""), std::string::npos);
  EXPECT_NE(all.find("\"event\":\"request.done\""), std::string::npos);
  EXPECT_NE(all.find("\"op\":\"ping\""), std::string::npos);
}

}  // namespace
}  // namespace pckpt::serve
