#include "serve/server.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.hpp"
#include "failure/system_catalog.hpp"
#include "obs/json_value.hpp"
#include "serve/protocol.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace pckpt::serve {
namespace {

core::Scenario summit_scenario() {
  core::Scenario s;
  s.machine = workload::summit();
  s.applications = workload::summit_workloads();
  s.system = failure::system_by_name("titan");
  return s;
}

/// Full in-process daemon: store + planner + server on a temp socket,
/// run() on a background thread. Sockets live in /tmp (sun_path caps
/// paths at ~107 bytes; TempDir can exceed that under some runners).
class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string tag = std::to_string(::getpid());
    socket_path_ = "/tmp/pckpt_srv_" + tag + ".sock";
    store_path_ = testing::TempDir() + "pckpt_server_store_" + tag;
    ::unlink(store_path_.c_str());
    ::unlink((store_path_ + ".journal").c_str());
    store_ = std::make_unique<ResultStore>(store_path_);
    planner_ = std::make_unique<Planner>(summit_scenario(),
                                         AdmissionConfig{}, *store_);
    server_ = std::make_unique<Server>(socket_path_, *planner_);
    runner_ = std::thread([this] { server_->run(); });
  }
  void TearDown() override {
    server_->stop();
    runner_.join();
    server_.reset();
    planner_.reset();
    store_.reset();
    ::unlink(store_path_.c_str());
    ::unlink((store_path_ + ".journal").c_str());
  }

  /// One-shot request: send a line, read response lines until the
  /// terminal (non-progress) one, return all of them.
  std::vector<std::string> roundtrip(const std::string& request) {
    Client client(socket_path_);
    client.send_line(request);
    std::vector<std::string> lines;
    while (auto line = client.read_line()) {
      const bool progress = line->rfind("{\"ev\":\"progress\"", 0) == 0;
      lines.push_back(std::move(*line));
      if (!progress) break;
    }
    return lines;
  }

  std::string socket_path_;
  std::string store_path_;
  std::unique_ptr<ResultStore> store_;
  std::unique_ptr<Planner> planner_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
};

TEST_F(ServerTest, PingPong) {
  const auto lines = roundtrip(R"({"op":"ping"})");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], R"({"ev":"pong","version":"pckpt-serve/1"})");
}

TEST_F(ServerTest, MalformedLineYieldsError400) {
  const auto lines = roundtrip("this is not json");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind(R"({"ev":"error","code":400)", 0), 0u);
}

TEST_F(ServerTest, UnknownApplicationYields404) {
  const auto lines =
      roundtrip(R"({"op":"query","model":"P1","app":"NOSUCH"})");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].rfind(R"({"ev":"error","code":404)", 0), 0u);
}

TEST_F(ServerTest, EstimateMissThenHitSamePayloadBytes) {
  const std::string q = R"({"op":"query","model":"P1","app":"VULCAN"})";
  const auto miss = roundtrip(q);
  const auto hit = roundtrip(q);
  ASSERT_EQ(miss.size(), 1u);
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_NE(miss[0].find(R"("cached":false)"), std::string::npos);
  EXPECT_NE(hit[0].find(R"("cached":true)"), std::string::npos);
  const auto p_miss = extract_payload(miss[0]);
  const auto p_hit = extract_payload(hit[0]);
  ASSERT_TRUE(p_miss && p_hit);
  EXPECT_EQ(*p_miss, *p_hit);
}

TEST_F(ServerTest, ExactQueryStreamsProgressAndMemoizes) {
  const std::string q =
      R"({"op":"query","mode":"exact","model":"P2","app":"VULCAN",)"
      R"("runs":8,"seed":7,"progress":true})";
  const auto miss = roundtrip(q);
  ASSERT_GE(miss.size(), 2u) << "expected at least one progress line";
  for (std::size_t i = 0; i + 1 < miss.size(); ++i) {
    EXPECT_EQ(miss[i].rfind(R"({"ev":"progress")", 0), 0u);
  }
  const std::string& result = miss.back();
  EXPECT_NE(result.find(R"("tier":"exact")"), std::string::npos);
  EXPECT_NE(result.find(R"("cached":false)"), std::string::npos);

  const auto hit = roundtrip(q);
  // Cache hits skip the campaign entirely — no progress lines.
  ASSERT_EQ(hit.size(), 1u);
  EXPECT_NE(hit[0].find(R"("cached":true)"), std::string::npos);
  EXPECT_EQ(*extract_payload(hit[0]), *extract_payload(result));
}

TEST_F(ServerTest, StatsReflectTraffic) {
  roundtrip(R"({"op":"query","model":"M2","app":"VULCAN"})");
  roundtrip(R"({"op":"query","model":"M2","app":"VULCAN"})");
  const auto lines = roundtrip(R"({"op":"stats"})");
  ASSERT_EQ(lines.size(), 1u);
  const auto doc = obs::parse_json(lines[0]);
  EXPECT_EQ(doc.key_u64("hits"), 1u);
  EXPECT_EQ(doc.key_u64("estimate_misses"), 1u);
  EXPECT_EQ(doc.key_u64("records"), 1u);
  EXPECT_GT(*doc.key_u64("log_bytes"), 0u);
}

TEST_F(ServerTest, ConcurrentClientsAllAnswered) {
  constexpr int kClients = 8;
  std::vector<std::string> payloads(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([this, i, &payloads] {
      // Half share one query (exercising concurrent memoization of the
      // same key), half are distinct.
      const std::string app = (i % 2 == 0) ? "VULCAN" : "POP";
      Client client(socket_path_);
      client.send_line(R"({"op":"query","model":"P1","app":")" + app +
                       R"("})");
      if (auto line = client.read_line()) {
        if (auto p = extract_payload(*line)) payloads[static_cast<std::size_t>(i)] = std::string(*p);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 0; i < kClients; ++i) {
    ASSERT_FALSE(payloads[static_cast<std::size_t>(i)].empty()) << i;
    // Same app -> byte-identical payload regardless of which client
    // computed it and which hit the cache.
    EXPECT_EQ(payloads[static_cast<std::size_t>(i)],
              payloads[static_cast<std::size_t>(i % 2)]);
  }
}

TEST_F(ServerTest, ShutdownOpStopsTheServer) {
  const auto lines = roundtrip(R"({"op":"shutdown"})");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], R"({"ev":"bye"})");
  runner_.join();  // run() must return promptly after the shutdown op
  runner_ = std::thread([] {});  // keep TearDown's join() valid
}

}  // namespace
}  // namespace pckpt::serve
