#include "serve/cache_key.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/cr_config.hpp"
#include "failure/system_catalog.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace pckpt::serve {
namespace {

// Classic FNV-1a/64 test vectors — pin the constants so the on-disk
// store format can never silently change hash functions.
TEST(Fnv1a64, KnownVectors) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(Fnv1a64, KeyHexIsFixedWidthLowercase) {
  EXPECT_EQ(key_hex(0), "0000000000000000");
  EXPECT_EQ(key_hex(0xcbf29ce484222325ull), "cbf29ce484222325");
}

// The %.17g renderings are part of the persistent schema: a platform or
// compiler whose printf renders differently would fragment the cache.
TEST(CanonicalDouble, RoundTrippableRenderings) {
  EXPECT_EQ(canonical_double("x", 0.1), "0.10000000000000001");
  EXPECT_EQ(canonical_double("x", 1.0 / 3.0), "0.33333333333333331");
  EXPECT_EQ(canonical_double("x", 12.5), "12.5");
  EXPECT_EQ(canonical_double("x", 0.0), "0");
  EXPECT_EQ(canonical_double("x", -1.0), "-1");
  EXPECT_EQ(canonical_double("x", 1e300), "1.0000000000000001e+300");
}

TEST(CanonicalDouble, RejectsNonFiniteNamingTheField) {
  try {
    canonical_double("weibull_shape", std::nan(""));
    FAIL() << "NaN accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("weibull_shape"), std::string::npos);
  }
  EXPECT_THROW(
      canonical_double("dram_gb", std::numeric_limits<double>::infinity()),
      std::invalid_argument);
  EXPECT_THROW(
      canonical_double("dram_gb", -std::numeric_limits<double>::infinity()),
      std::invalid_argument);
}

CanonicalQuery reference_query() {
  core::CrConfig cr;
  cr.kind = core::ModelKind::kP1;
  return canonicalize("exact", "P1", 200, 2022, workload::summit(),
                      workload::workload_by_name("VULCAN"),
                      failure::system_by_name("titan"), cr);
}

// The golden key→hash pair of the reference query. If this moves, every
// existing store on disk silently misses — treat a failure here as a
// schema break requiring a kCacheKeySchema bump, not a test update.
TEST(CacheKey, PinnedReferenceHash) {
  EXPECT_EQ(key_hex(cache_key(reference_query())), "428e2cf7ccc0fc62");
}

TEST(CacheKey, CanonicalTextIsSchemaTaggedAndSorted) {
  const std::string text = canonical_text(reference_query());
  EXPECT_EQ(text.rfind("pckpt-query/1\napp=VULCAN\napp_nodes=64\n", 0), 0u);
  EXPECT_NE(text.find("\nrecall=0.84999999999999998\n"), std::string::npos);
  EXPECT_NE(text.find("\nsystem=OLCF Titan\n"), std::string::npos);
  EXPECT_NE(text.find("\nweibull_shape=0.6885\n"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

TEST(CacheKey, EveryFieldPerturbsTheKey) {
  const CanonicalQuery base = reference_query();
  const std::uint64_t k0 = cache_key(base);

  CanonicalQuery q = base;
  q.seed = 2023;
  EXPECT_NE(cache_key(q), k0);
  q = base;
  q.runs = 201;
  EXPECT_NE(cache_key(q), k0);
  q = base;
  q.mode = "estimate";
  EXPECT_NE(cache_key(q), k0);
  q = base;
  q.recall = 0.86;
  EXPECT_NE(cache_key(q), k0);
  q = base;
  q.spare_nodes = 4;
  EXPECT_NE(cache_key(q), k0);
  q = base;
  q.weibull_scale_hours = std::nextafter(q.weibull_scale_hours, 10.0);
  EXPECT_NE(cache_key(q), k0) << "one-ulp change must perturb the key";
}

TEST(CacheKey, ResolvedTupleNotNamesDecidesEquality) {
  // Two queries differing only in informational spelling of the same
  // physics hash differently only through the label fields; identical
  // labels + identical numbers collide by construction.
  const CanonicalQuery a = reference_query();
  CanonicalQuery b = reference_query();
  EXPECT_EQ(cache_key(a), cache_key(b));
}

TEST(CacheKey, CanonicalizeRejectsNonFinitePolicy) {
  core::CrConfig cr;
  cr.restart_seconds = std::numeric_limits<double>::infinity();
  const auto q = canonicalize("exact", "B", 1, 1, workload::summit(),
                              workload::workload_by_name("VULCAN"),
                              failure::system_by_name("titan"), cr);
  EXPECT_THROW(canonical_text(q), std::invalid_argument);
}

}  // namespace
}  // namespace pckpt::serve
