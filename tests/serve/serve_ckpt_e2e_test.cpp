/// End-to-end campaign checkpointing over the real binaries: a
/// `pckpt_serve` daemon started with --checkpoint=DIR is SIGKILLed in
/// the middle of a long exact-tier campaign, restarted on the same
/// store and checkpoint directory, and asked the same query again. The
/// reply must be byte-identical to a cold daemon's answer, and the
/// stats counters must prove the committed shards were resumed rather
/// than re-executed.
///
/// Binary locations arrive as compile definitions (PCKPT_SERVE_BIN,
/// PCKPT_QUERY_BIN, PCKPT_SCENARIO_INI) wired by tests/CMakeLists.txt.

#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

namespace {

// 800 runs / 8 trials per shard = 100 shards. The exact tier runs on a
// serial executor, so the campaign stays in flight long enough for the
// parent to observe early progress events and kill the daemon mid-run.
constexpr int kRuns = 800;
constexpr int kSeed = 7;
constexpr int kShards = 100;

/// fork+exec argv[0], capture stdout, return the exit code. stderr
/// passes through to the test log.
int run_capture(const std::vector<std::string>& argv, std::string* out) {
  int pipefd[2];
  EXPECT_EQ(::pipe(pipefd), 0);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::close(pipefd[0]);
    ::dup2(pipefd[1], STDOUT_FILENO);
    ::close(pipefd[1]);
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const auto& a : argv) args.push_back(const_cast<char*>(a.c_str()));
    args.push_back(nullptr);
    ::execv(args[0], args.data());
    ::_exit(127);
  }
  ::close(pipefd[1]);
  std::string captured;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(pipefd[0], buf, sizeof(buf))) > 0) {
    captured.append(buf, static_cast<std::size_t>(n));
  }
  ::close(pipefd[0]);
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  if (out) *out = std::move(captured);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// Parse `"name":<unsigned>` out of a flat JSON row.
std::uint64_t u64_field(const std::string& line, const std::string& name) {
  const std::string tag = "\"" + name + "\":";
  const auto at = line.find(tag);
  EXPECT_NE(at, std::string::npos) << name << " missing from: " << line;
  if (at == std::string::npos) return 0;
  return std::strtoull(line.c_str() + at + tag.size(), nullptr, 10);
}

class ServeCkptE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string tag = std::to_string(::getpid());
    socket_ = "/tmp/pckpt_ckpt_e2e_" + tag + ".sock";
    store_ = testing::TempDir() + "pckpt_ckpt_e2e_store_" + tag;
    ckpt_dir_ = testing::TempDir() + "pckpt_ckpt_e2e_dir_" + tag;
    clean_files();
    start_daemon(socket_, store_, ckpt_dir_);
  }

  void TearDown() override {
    if (daemon_ > 0) {
      std::string out;
      run_capture({PCKPT_QUERY_BIN, "--socket=" + socket_, "--shutdown"},
                  &out);
      int status = 0;
      ::waitpid(daemon_, &status, 0);
    }
    clean_files();
  }

  void clean_files() {
    ::unlink(store_.c_str());
    ::unlink((store_ + ".journal").c_str());
    std::system(("rm -rf " + ckpt_dir_).c_str());
  }

  /// Each daemon start gets its own telemetry log file, so assertions
  /// about "the restarted daemon's log" cannot be satisfied by records
  /// a previous incarnation wrote.
  void start_daemon(const std::string& socket, const std::string& store,
                    const std::string& ckpt_dir) {
    log_path_ = testing::TempDir() + "pckpt_ckpt_e2e_log_" +
                std::to_string(::getpid()) + "_" +
                std::to_string(++daemon_starts_) + ".ndjson";
    ::unlink(log_path_.c_str());
    daemon_ = ::fork();
    if (daemon_ == 0) {
      const char* bin = PCKPT_SERVE_BIN;
      ::execl(bin, bin, ("--socket=" + socket).c_str(),
              ("--store=" + store).c_str(),
              ("--checkpoint=" + ckpt_dir).c_str(),
              "--scenario=" PCKPT_SCENARIO_INI,
              ("--log=" + log_path_).c_str(), "--log-level=debug",
              (char*)nullptr);
      ::_exit(127);
    }
    ASSERT_TRUE(wait_for_socket(socket)) << "daemon never came up";
  }

  /// Entire telemetry log of the most recently started daemon.
  std::string read_daemon_log() const {
    std::ifstream in(log_path_);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  /// Poll until the daemon's listening socket accepts a connection.
  static bool wait_for_socket(const std::string& path) {
    for (int i = 0; i < 500; ++i) {
      const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
      const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                               sizeof(addr));
      ::close(fd);
      if (rc == 0) return true;
      ::usleep(10 * 1000);
    }
    return false;
  }

  static std::vector<std::string> query_args(const std::string& socket) {
    return {PCKPT_QUERY_BIN,
            "--socket=" + socket,
            "--mode=exact",
            "--model=P1",
            "--app=vulcan",
            "--runs=" + std::to_string(kRuns),
            "--seed=" + std::to_string(kSeed),
            "--payload-only"};
  }

  std::string query_payload(const std::string& socket) {
    std::string out;
    const int rc = run_capture(query_args(socket), &out);
    EXPECT_EQ(rc, 0) << out;
    return out;
  }

  /// Launch the long query with --progress (shard events stream to the
  /// client's stderr), and SIGKILL the daemon once `after` progress
  /// lines have been observed — i.e. mid-campaign, with a committed
  /// shard prefix on disk. Returns the number of lines seen.
  int kill_daemon_after_progress(int after) {
    int errpipe[2];
    EXPECT_EQ(::pipe(errpipe), 0);
    const pid_t client = ::fork();
    if (client == 0) {
      ::close(errpipe[0]);
      ::dup2(errpipe[1], STDERR_FILENO);
      ::close(errpipe[1]);
      const int devnull = ::open("/dev/null", O_WRONLY);
      if (devnull >= 0) ::dup2(devnull, STDOUT_FILENO);
      auto argv = query_args(socket_);
      argv.push_back("--progress");
      std::vector<char*> args;
      for (const auto& a : argv) args.push_back(const_cast<char*>(a.c_str()));
      args.push_back(nullptr);
      ::execv(args[0], args.data());
      ::_exit(127);
    }
    ::close(errpipe[1]);
    int lines = 0;
    bool killed = false;
    char c = 0;
    while (::read(errpipe[0], &c, 1) == 1) {
      if (c != '\n') continue;
      ++lines;
      if (!killed && lines >= after) {
        ::kill(daemon_, SIGKILL);
        killed = true;
      }
    }
    ::close(errpipe[0]);
    EXPECT_TRUE(killed) << "query finished after only " << lines
                        << " progress lines — never got to kill the daemon";
    int status = 0;
    ::waitpid(client, &status, 0);  // client fails once the daemon dies
    ::waitpid(daemon_, &status, 0);
    daemon_ = -1;
    return lines;
  }

  std::string socket_;
  std::string store_;
  std::string ckpt_dir_;
  std::string log_path_;  ///< telemetry log of the latest start_daemon
  int daemon_starts_ = 0;
  pid_t daemon_ = -1;
};

TEST_F(ServeCkptE2eTest, KilledDaemonResumesCommittedShardsAndRepliesByteIdentical) {
  // Phase 1: submit the campaign, kill the daemon after a few shards
  // have been reported (and therefore committed to the checkpoint log).
  kill_daemon_after_progress(3);

  // Phase 2: restart on the same store + checkpoint directory. The
  // memoized payload was never written (the daemon died mid-campaign),
  // so the same query re-enters the exact tier — which must resume the
  // committed shard prefix instead of starting over.
  start_daemon(socket_, store_, ckpt_dir_);
  const std::string resumed = query_payload(socket_);
  ASSERT_FALSE(resumed.empty());

  std::string stats;
  ASSERT_EQ(run_capture({PCKPT_QUERY_BIN, "--socket=" + socket_, "--stats"},
                        &stats),
            0);
  const std::uint64_t shards_resumed = u64_field(stats, "shards_resumed");
  const std::uint64_t shards_executed = u64_field(stats, "shards_executed");
  // Committed work is never lost: the SIGKILL landed after ≥3 progress
  // events, so a non-empty prefix must have been loaded from disk...
  EXPECT_GE(shards_resumed, 1u);
  // ...and never re-executed: resumed + executed covers each of the 250
  // shards exactly once.
  EXPECT_EQ(shards_resumed + shards_executed,
            static_cast<std::uint64_t>(kShards));
  EXPECT_LT(shards_executed, static_cast<std::uint64_t>(kShards));

  // The restarted daemon's telemetry log must narrate the recovery:
  // a journal-replay record for the store it reopened, a ckpt.resume
  // record for the committed shard prefix it loaded, and a ckpt.done
  // record once the campaign finished (docs/OBSERVABILITY.md).
  const std::string log = read_daemon_log();
  EXPECT_NE(log.find("\"event\":\"journal.recover\""), std::string::npos)
      << log;
  EXPECT_NE(log.find("\"event\":\"ckpt.resume\""), std::string::npos) << log;
  EXPECT_NE(log.find("\"event\":\"ckpt.done\""), std::string::npos) << log;
  EXPECT_NE(log.find("\"shards_resumed\":" + std::to_string(shards_resumed)),
            std::string::npos)
      << log;

  // Phase 3: a cold daemon (fresh store, fresh checkpoint dir) must
  // produce the byte-identical payload — resume changed nothing.
  const std::string tag = std::to_string(::getpid());
  const std::string cold_socket = "/tmp/pckpt_ckpt_e2e_cold_" + tag + ".sock";
  const std::string cold_store =
      testing::TempDir() + "pckpt_ckpt_e2e_cold_store_" + tag;
  const std::string cold_dir =
      testing::TempDir() + "pckpt_ckpt_e2e_cold_dir_" + tag;
  const pid_t warm = daemon_;
  start_daemon(cold_socket, cold_store, cold_dir);
  const pid_t cold = daemon_;
  const std::string cold_payload = query_payload(cold_socket);
  EXPECT_EQ(resumed, cold_payload);

  std::string out;
  run_capture({PCKPT_QUERY_BIN, "--socket=" + cold_socket, "--shutdown"},
              &out);
  int status = 0;
  ::waitpid(cold, &status, 0);
  daemon_ = warm;  // TearDown shuts the restarted daemon down cleanly
  ::unlink(cold_store.c_str());
  ::unlink((cold_store + ".journal").c_str());
  std::system(("rm -rf " + cold_dir).c_str());
}

TEST_F(ServeCkptE2eTest, CompletedCampaignDropsItsCheckpointAndMemoizes) {
  // An uninterrupted campaign should leave no checkpoint behind (the
  // planner removes it after memoizing) and serve repeats from cache.
  const std::string first = query_payload(socket_);
  ASSERT_FALSE(first.empty());

  std::string stats;
  ASSERT_EQ(run_capture({PCKPT_QUERY_BIN, "--socket=" + socket_, "--stats"},
                        &stats),
            0);
  EXPECT_EQ(u64_field(stats, "shards_resumed"), 0u);
  EXPECT_EQ(u64_field(stats, "shards_executed"),
            static_cast<std::uint64_t>(kShards));

  const std::string second = query_payload(socket_);
  EXPECT_EQ(first, second);
  // Still one executed campaign: the repeat was a store hit.
  ASSERT_EQ(run_capture({PCKPT_QUERY_BIN, "--socket=" + socket_, "--stats"},
                        &stats),
            0);
  EXPECT_EQ(u64_field(stats, "shards_executed"),
            static_cast<std::uint64_t>(kShards));
}

}  // namespace
