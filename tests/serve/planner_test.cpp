#include "serve/planner.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "core/campaign.hpp"
#include "core/scenario.hpp"
#include "exec/executor.hpp"
#include "exec/fair_share.hpp"
#include "failure/system_catalog.hpp"
#include "obs/json_value.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace pckpt::serve {
namespace {

core::Scenario summit_scenario() {
  core::Scenario s;
  s.machine = workload::summit();
  s.applications = workload::summit_workloads();
  s.system = failure::system_by_name("titan");
  return s;
}

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "pckpt_planner_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ::unlink(path_.c_str());
    ::unlink((path_ + ".journal").c_str());
    store_ = std::make_unique<ResultStore>(path_);
    planner_ = std::make_unique<Planner>(summit_scenario(), AdmissionConfig{},
                                         *store_);
  }
  void TearDown() override {
    planner_.reset();
    store_.reset();
    ::unlink(path_.c_str());
    ::unlink((path_ + ".journal").c_str());
  }

  static QuerySpec estimate_spec() {
    QuerySpec q;
    q.mode = "estimate";
    q.model = "P1";
    q.app = "VULCAN";
    return q;
  }

  static QuerySpec exact_spec() {
    QuerySpec q;
    q.mode = "exact";
    q.model = "P1";
    q.app = "VULCAN";
    q.runs = 8;
    q.seed = 7;
    return q;
  }

  std::string path_;
  std::unique_ptr<ResultStore> store_;
  std::unique_ptr<Planner> planner_;
};

TEST_F(PlannerTest, EstimateMissThenByteIdenticalHit) {
  const auto miss = planner_->answer(estimate_spec());
  EXPECT_FALSE(miss.cached);
  EXPECT_EQ(miss.tier, "estimate");
  const auto hit = planner_->answer(estimate_spec());
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(hit.key, miss.key);
  EXPECT_EQ(hit.payload, miss.payload);

  const auto c = planner_->counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.estimate_misses, 1u);
  EXPECT_EQ(c.exact_misses, 0u);
}

TEST_F(PlannerTest, EstimateIgnoresRunsAndSeedInTheKey) {
  QuerySpec a = estimate_spec();
  a.runs = 10;
  a.seed = 1;
  QuerySpec b = estimate_spec();
  b.runs = 999;
  b.seed = 2;
  EXPECT_EQ(planner_->resolve(a).key, planner_->resolve(b).key);
  // ...but exact queries do key on them.
  QuerySpec c = exact_spec();
  QuerySpec d = exact_spec();
  d.seed = 8;
  EXPECT_NE(planner_->resolve(c).key, planner_->resolve(d).key);
}

TEST_F(PlannerTest, EstimatePayloadIsValidJsonWithSchema) {
  const auto out = planner_->answer(estimate_spec());
  const auto doc = obs::parse_json(out.payload);
  EXPECT_EQ(doc.key_string("schema"), "pckpt-serve/1");
  EXPECT_EQ(doc.key_string("mode"), "estimate");
  EXPECT_EQ(doc.key_string("model"), "P1");
  const auto sigma = doc.key_number("sigma");
  const auto beta = doc.key_number("beta");
  ASSERT_TRUE(sigma && beta);
  EXPECT_GE(*sigma, 0.0);
  EXPECT_LE(*sigma, 1.0);
  EXPECT_GE(*beta, 0.0);
  EXPECT_LE(*beta, 1.0);
  EXPECT_GT(*doc.key_number("total_h"), 0.0);
}

TEST_F(PlannerTest, EstimateModelOrderingMatchesThePaper) {
  // The mitigating models must estimate no more total overhead than the
  // base model on the same physics (first-order sanity, Obs. 5-8).
  auto total_h = [&](const char* model) {
    QuerySpec q = estimate_spec();
    q.model = model;
    const auto doc = obs::parse_json(planner_->answer(q).payload);
    return *doc.key_number("total_h");
  };
  const double b = total_h("B");
  EXPECT_LE(total_h("M2"), b);
  EXPECT_LE(total_h("P1"), b);
  EXPECT_LE(total_h("P2"), b);
}

TEST_F(PlannerTest, ExactMissMatchesStandaloneCampaignByteForByte) {
  const QuerySpec spec = exact_spec();
  const auto out = planner_->answer(spec);
  EXPECT_FALSE(out.cached);

  // Reconstruct the identical campaign by hand — same engine, same
  // config, same seed — and render it through the same pure function.
  const core::Scenario scenario = summit_scenario();
  const auto storage = scenario.machine.make_storage();
  const auto leads = failure::LeadTimeModel::summit_default();
  const Planner::Resolved r = planner_->resolve(spec);
  core::RunSetup setup;
  setup.app = &r.app;
  setup.machine = &scenario.machine;
  setup.storage = &storage;
  setup.system = &r.system;
  setup.leads = &leads;
  exec::SerialExecutor ex;
  const auto result = core::run_campaign(
      setup, r.cr, static_cast<std::size_t>(spec.runs), spec.seed, ex);
  EXPECT_EQ(out.payload, render_exact_payload(r.canonical, result));

  // And the cache hit returns those bytes untouched.
  const auto hit = planner_->answer(spec);
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(hit.payload, out.payload);
}

TEST_F(PlannerTest, FairShareSchedulerPayloadMatchesSerialByteForByte) {
  // Determinism across the executor seam: a planner running tier B on
  // the shared fair-share pool must produce the exact payload bytes of
  // the fixture's serial planner.
  QuerySpec spec = exact_spec();
  spec.runs = 48;  // several shards, so pool scheduling actually differs
  const auto serial = planner_->answer(spec);

  const std::string pooled_path = path_ + "_pool";
  ::unlink(pooled_path.c_str());
  ::unlink((pooled_path + ".journal").c_str());
  {
    ResultStore pooled_store(pooled_path);
    exec::FairShareScheduler scheduler(3);
    Planner pooled(summit_scenario(), AdmissionConfig{}, pooled_store,
                   /*checkpoint_dir=*/"", &scheduler);
    const auto out = pooled.answer(spec);
    EXPECT_FALSE(out.cached);
    EXPECT_EQ(out.key, serial.key);
    EXPECT_EQ(out.payload, serial.payload);
  }
  ::unlink(pooled_path.c_str());
  ::unlink((pooled_path + ".journal").c_str());
}

TEST_F(PlannerTest, ExactResultsPersistAcrossStoreReopen) {
  const auto first = planner_->answer(exact_spec());
  planner_.reset();
  store_.reset();
  store_ = std::make_unique<ResultStore>(path_);
  planner_ = std::make_unique<Planner>(summit_scenario(), AdmissionConfig{},
                                       *store_);
  const auto hit = planner_->answer(exact_spec());
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(hit.payload, first.payload);
}

TEST_F(PlannerTest, UnknownNamesAre404) {
  auto code_of = [&](QuerySpec q) {
    try {
      planner_->resolve(q);
    } catch (const ServeError& e) {
      return e.code();
    }
    return 0;
  };
  QuerySpec q = estimate_spec();
  q.model = "P9";
  EXPECT_EQ(code_of(q), 404);
  q = estimate_spec();
  q.app = "NOSUCH";
  EXPECT_EQ(code_of(q), 404);
  q = estimate_spec();
  q.system = "cray1";
  EXPECT_EQ(code_of(q), 404);
}

TEST_F(PlannerTest, InvalidOverridesAre400) {
  QuerySpec q = estimate_spec();
  q.recall = 1.5;
  try {
    planner_->resolve(q);
    FAIL() << "recall=1.5 accepted";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), 400);
  }
  q = estimate_spec();
  q.spare_nodes = 2.5;
  try {
    planner_->resolve(q);
    FAIL() << "fractional spare_nodes accepted";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), 400);
  }
}

TEST_F(PlannerTest, OverridesChangeTheKeyAndTheAnswer) {
  QuerySpec q = estimate_spec();
  const auto base = planner_->answer(q);
  q.lm_transfer_factor = 6.0;
  const auto bigger_alpha = planner_->answer(q);
  EXPECT_NE(bigger_alpha.key, base.key);
  EXPECT_FALSE(bigger_alpha.cached);
  EXPECT_NE(bigger_alpha.payload, base.payload);
}

// -----------------------------------------------------------------
// Admission gate.
// -----------------------------------------------------------------

TEST(AdmissionGateTest, ImmediateRejectWhenFullAndNoWait) {
  AdmissionGate gate({/*max_inflight=*/1, /*queue_limit=*/4, /*wait_ms=*/0});
  gate.acquire();
  try {
    gate.acquire();
    FAIL() << "second acquire admitted";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), 429);
  }
  EXPECT_EQ(gate.rejected(), 1u);
  gate.release();
  gate.acquire();  // slot free again
  gate.release();
  EXPECT_EQ(gate.inflight(), 0u);
}

TEST(AdmissionGateTest, QueueLimitBoundsWaiters) {
  // wait_ms > 0 but zero queue slots: still an immediate 429.
  AdmissionGate gate({1, /*queue_limit=*/0, /*wait_ms=*/1000});
  gate.acquire();
  EXPECT_THROW(gate.acquire(), ServeError);
  gate.release();
}

TEST(AdmissionGateTest, WaiterAdmittedOnRelease) {
  AdmissionGate gate({1, 4, /*wait_ms=*/30000});
  gate.acquire();
  // Whether the waiter parks before or after the release, it must end
  // up admitted (never rejected) within the generous wait budget.
  std::thread waiter([&] { AdmissionTicket t(gate); });
  gate.release();
  waiter.join();
  EXPECT_EQ(gate.inflight(), 0u);
  EXPECT_EQ(gate.rejected(), 0u);
}

TEST(AdmissionGateTest, ShortWaitTimesOutWith429) {
  AdmissionGate gate({1, 4, /*wait_ms=*/10});
  gate.acquire();
  try {
    gate.acquire();
    FAIL() << "admitted past a full gate";
  } catch (const ServeError& e) {
    EXPECT_EQ(e.code(), 429);
  }
  gate.release();
}

}  // namespace
}  // namespace pckpt::serve
