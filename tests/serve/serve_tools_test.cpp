/// End-to-end test over the real binaries: spawn `pckpt_serve` on the
/// checked-in Summit scenario, drive it with `pckpt_query`, and check
/// the memoized exact-tier payload against a standalone `pckpt_sim` run
/// of the identical campaign — field strings must match byte-for-byte
/// (both sides render through JsonlRow's %.12g).
///
/// Binary locations arrive as compile definitions (PCKPT_SERVE_BIN,
/// PCKPT_QUERY_BIN, PCKPT_SIM_BIN, PCKPT_SCENARIO_INI) wired by
/// tests/CMakeLists.txt via $<TARGET_FILE:...>.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

constexpr int kRuns = 6;
constexpr int kSeed = 9;

/// fork+exec argv[0] with the given arguments, capture stdout, return
/// the exit code. stderr passes through to the test log.
int run_capture(const std::vector<std::string>& argv, std::string* out) {
  int pipefd[2];
  EXPECT_EQ(::pipe(pipefd), 0);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::close(pipefd[0]);
    ::dup2(pipefd[1], STDOUT_FILENO);
    ::close(pipefd[1]);
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const auto& a : argv) args.push_back(const_cast<char*>(a.c_str()));
    args.push_back(nullptr);
    ::execv(args[0], args.data());
    ::_exit(127);
  }
  ::close(pipefd[1]);
  std::string captured;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(pipefd[0], buf, sizeof(buf))) > 0) {
    captured.append(buf, static_cast<std::size_t>(n));
  }
  ::close(pipefd[0]);
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  if (out) *out = std::move(captured);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// The raw rendered text of `"name":<value>` inside a JSON line, value
/// taken verbatim up to the next top-level ',' or '}'. Good enough for
/// the flat rows both tools emit, and exactly what byte-identity needs.
std::string raw_field(const std::string& line, const std::string& name) {
  const std::string tag = "\"" + name + "\":";
  const auto at = line.find(tag);
  if (at == std::string::npos) return {};
  auto end = at + tag.size();
  bool in_string = false;
  for (; end < line.size(); ++end) {
    const char c = line[end];
    if (c == '"' && line[end - 1] != '\\') in_string = !in_string;
    if (!in_string && (c == ',' || c == '}')) break;
  }
  return line.substr(at + tag.size(), end - (at + tag.size()));
}

class ServeToolsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string tag = std::to_string(::getpid());
    socket_ = "/tmp/pckpt_e2e_" + tag + ".sock";
    store_ = testing::TempDir() + "pckpt_e2e_store_" + tag;
    jsonl_ = testing::TempDir() + "pckpt_e2e_sim_" + tag + ".jsonl";
    ::unlink(store_.c_str());
    ::unlink((store_ + ".journal").c_str());
    ::unlink(jsonl_.c_str());

    daemon_ = ::fork();
    if (daemon_ == 0) {
      const char* bin = PCKPT_SERVE_BIN;
      ::execl(bin, bin, ("--socket=" + socket_).c_str(),
              ("--store=" + store_).c_str(),
              "--scenario=" PCKPT_SCENARIO_INI, (char*)nullptr);
      ::_exit(127);
    }
    ASSERT_TRUE(wait_for_socket()) << "daemon never came up";
  }

  void TearDown() override {
    std::string out;
    run_capture({PCKPT_QUERY_BIN, "--socket=" + socket_, "--shutdown"}, &out);
    int status = 0;
    ::waitpid(daemon_, &status, 0);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "daemon exit status " << status;
    ::unlink(store_.c_str());
    ::unlink((store_ + ".journal").c_str());
    ::unlink(jsonl_.c_str());
  }

  /// Poll until the daemon's listening socket accepts a connection.
  bool wait_for_socket() {
    for (int i = 0; i < 500; ++i) {
      const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, socket_.c_str(),
                   sizeof(addr.sun_path) - 1);
      const int rc = ::connect(
          fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
      ::close(fd);
      if (rc == 0) return true;
      ::usleep(10 * 1000);
    }
    return false;
  }

  std::string query_payload(const char* mode, const char* model) {
    std::string out;
    const int rc = run_capture(
        {PCKPT_QUERY_BIN, "--socket=" + socket_, std::string("--mode=") + mode,
         std::string("--model=") + model, "--app=vulcan",
         "--runs=" + std::to_string(kRuns), "--seed=" + std::to_string(kSeed),
         "--payload-only"},
        &out);
    EXPECT_EQ(rc, 0) << out;
    return out;
  }

  std::string socket_;
  std::string store_;
  std::string jsonl_;
  pid_t daemon_ = -1;
};

TEST_F(ServeToolsTest, PingAnswersOverTheWire) {
  std::string out;
  const int rc =
      run_capture({PCKPT_QUERY_BIN, "--socket=" + socket_, "--ping"}, &out);
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("\"ev\":\"pong\""), std::string::npos);
}

TEST_F(ServeToolsTest, RepeatQueryIsAByteIdenticalCacheHit) {
  const std::string miss = query_payload("exact", "P1");
  const std::string hit = query_payload("exact", "P1");
  ASSERT_FALSE(miss.empty());
  EXPECT_EQ(miss, hit);
}

TEST_F(ServeToolsTest, ExactPayloadMatchesStandalonePckptSim) {
  const std::string payload = query_payload("exact", "P1");
  ASSERT_FALSE(payload.empty());

  std::string sim_out;
  const int rc = run_capture(
      {PCKPT_SIM_BIN, PCKPT_SCENARIO_INI, "--models=P1",
       "--runs=" + std::to_string(kRuns), "--seed=" + std::to_string(kSeed),
       "--jobs=1", "--jsonl=" + jsonl_},
      &sim_out);
  ASSERT_EQ(rc, 0) << sim_out;

  // Locate the VULCAN/P1 row in the standalone run's JSONL stream.
  std::ifstream in(jsonl_);
  std::string line;
  std::string row;
  while (std::getline(in, line)) {
    if (line.find("\"app\":\"vulcan\"") != std::string::npos &&
        line.find("\"model\":\"P1\"") != std::string::npos) {
      row = line;
      break;
    }
  }
  ASSERT_FALSE(row.empty()) << "no vulcan/P1 row in pckpt_sim output";

  // Every metric the daemon serves must be the byte-identical rendering
  // pckpt_sim wrote — same engine, same seed, same printf path.
  for (const char* field :
       {"ckpt_h", "recomp_h", "recov_h", "migr_h", "total_h", "ft_ratio",
        "failures_per_run", "makespan_h"}) {
    const std::string served = raw_field(payload, field);
    const std::string standalone = raw_field(row, field);
    ASSERT_FALSE(served.empty()) << field << " missing from payload";
    ASSERT_FALSE(standalone.empty()) << field << " missing from sim row";
    EXPECT_EQ(served, standalone) << field;
  }
}

TEST_F(ServeToolsTest, EstimateTierAnswersWithoutACampaign) {
  const std::string payload = query_payload("estimate", "P2");
  EXPECT_NE(payload.find("\"mode\":\"estimate\""), std::string::npos);
  EXPECT_FALSE(raw_field(payload, "sigma").empty());
  EXPECT_FALSE(raw_field(payload, "total_h").empty());
}

TEST_F(ServeToolsTest, BatchFileAnswersEveryEntryOverOneRoundTrip) {
  // Reference payloads via single queries first (they memoize).
  const std::string estimate = query_payload("estimate", "P1");
  const std::string exact = query_payload("exact", "P1");

  const std::string batch = testing::TempDir() + "pckpt_e2e_batch_" +
                            std::to_string(::getpid()) + ".txt";
  {
    std::ofstream out(batch);
    out << R"({"model":"P1","app":"vulcan"})" << "\n";
    out << R"({"mode":"exact","model":"P1","app":"vulcan","runs":)" << kRuns
        << R"(,"seed":)" << kSeed << "}\n";
  }
  std::string out;
  const int rc = run_capture({PCKPT_QUERY_BIN, "--socket=" + socket_,
                              "--batch=" + batch, "--payload-only"},
                             &out);
  ::unlink(batch.c_str());
  EXPECT_EQ(rc, 0) << out;
  // --payload-only prints exactly the two payloads, in request order,
  // byte-identical to the single-query answers.
  EXPECT_EQ(out, estimate + exact);
}

TEST_F(ServeToolsTest, BatchWithFailingEntryExitsNonzero) {
  const std::string batch = testing::TempDir() + "pckpt_e2e_batchfail_" +
                            std::to_string(::getpid()) + ".txt";
  {
    std::ofstream out(batch);
    out << R"({"model":"P1","app":"vulcan"})" << "\n";
    out << R"({"model":"P1","app":"nosuch"})" << "\n";
  }
  std::string out;
  const int rc = run_capture(
      {PCKPT_QUERY_BIN, "--socket=" + socket_, "--batch=" + batch}, &out);
  ::unlink(batch.c_str());
  EXPECT_EQ(rc, 1);
  // The good entry and the terminal tally still land on stdout.
  EXPECT_NE(out.find("\"ev\":\"entry\",\"i\":0,\"status\":200"),
            std::string::npos);
  EXPECT_NE(out.find("\"ev\":\"batch\",\"n\":2,\"ok\":1"), std::string::npos);
}

TEST_F(ServeToolsTest, JobsFlagServesByteIdenticalExactPayloads) {
  // Determinism contract over the wire: a daemon with a wider worker
  // pool must serve the same exact-tier bytes as the default.
  auto exact_payload = [&] {
    std::string out;
    const int rc = run_capture(
        {PCKPT_QUERY_BIN, "--socket=" + socket_, "--mode=exact",
         "--model=P2", "--app=vulcan", "--runs=48", "--seed=5",
         "--payload-only"},
        &out);
    EXPECT_EQ(rc, 0) << out;
    return out;
  };
  const std::string serial = exact_payload();
  ASSERT_FALSE(serial.empty());

  // Restart on a FRESH store with --jobs=4 so the answer is recomputed
  // on the shared pool rather than served from the memo.
  std::string out;
  run_capture({PCKPT_QUERY_BIN, "--socket=" + socket_, "--shutdown"}, &out);
  int status = 0;
  ::waitpid(daemon_, &status, 0);
  ::unlink(store_.c_str());
  ::unlink((store_ + ".journal").c_str());
  daemon_ = ::fork();
  if (daemon_ == 0) {
    const char* bin = PCKPT_SERVE_BIN;
    ::execl(bin, bin, ("--socket=" + socket_).c_str(),
            ("--store=" + store_).c_str(), "--scenario=" PCKPT_SCENARIO_INI,
            "--jobs=4", "--compact-min-dead=1048576", (char*)nullptr);
    ::_exit(127);
  }
  ASSERT_TRUE(wait_for_socket());
  EXPECT_EQ(exact_payload(), serial);
}

TEST_F(ServeToolsTest, StoreSurvivesDaemonRestart) {
  const std::string first = query_payload("exact", "M2");

  // Cleanly restart the daemon on the same store.
  std::string out;
  run_capture({PCKPT_QUERY_BIN, "--socket=" + socket_, "--shutdown"}, &out);
  int status = 0;
  ::waitpid(daemon_, &status, 0);
  daemon_ = ::fork();
  if (daemon_ == 0) {
    const char* bin = PCKPT_SERVE_BIN;
    ::execl(bin, bin, ("--socket=" + socket_).c_str(),
            ("--store=" + store_).c_str(),
            "--scenario=" PCKPT_SCENARIO_INI, (char*)nullptr);
    ::_exit(127);
  }
  ASSERT_TRUE(wait_for_socket());

  // The same query is now a hit served from the reopened log.
  EXPECT_EQ(query_payload("exact", "M2"), first);
}

}  // namespace
