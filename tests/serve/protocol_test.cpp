#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pckpt::serve {
namespace {

TEST(ParseRequest, QueryDefaultsAndRequiredFields) {
  const Request r =
      parse_request(R"({"op":"query","model":"P1","app":"VULCAN"})");
  EXPECT_EQ(r.op, Op::kQuery);
  EXPECT_EQ(r.query.mode, "estimate");
  EXPECT_EQ(r.query.model, "P1");
  EXPECT_EQ(r.query.app, "VULCAN");
  EXPECT_TRUE(r.query.system.empty());
  EXPECT_EQ(r.query.runs, 200u);
  EXPECT_EQ(r.query.seed, 2022u);
  EXPECT_FALSE(r.query.progress);
  EXPECT_FALSE(r.query.recall.has_value());
}

TEST(ParseRequest, QueryWithOverrides) {
  const Request r = parse_request(
      R"({"op":"query","mode":"exact","model":"P2","app":"XGC",)"
      R"("system":"lanl18","runs":64,"seed":7,"progress":true,)"
      R"("recall":0.9,"spare_nodes":-1,"drain_concurrency":8})");
  EXPECT_EQ(r.query.mode, "exact");
  EXPECT_EQ(r.query.system, "lanl18");
  EXPECT_EQ(r.query.runs, 64u);
  EXPECT_EQ(r.query.seed, 7u);
  EXPECT_TRUE(r.query.progress);
  EXPECT_EQ(r.query.recall, 0.9);
  EXPECT_EQ(r.query.spare_nodes, -1.0);
  EXPECT_EQ(r.query.drain_concurrency, 8u);
}

TEST(ParseRequest, NonQueryOps) {
  EXPECT_EQ(parse_request(R"({"op":"ping"})").op, Op::kPing);
  EXPECT_EQ(parse_request(R"({"op":"stats"})").op, Op::kStats);
  EXPECT_EQ(parse_request(R"({"op":"shutdown"})").op, Op::kShutdown);
}

TEST(ParseRequest, BatchCarriesEveryEntryInOrder) {
  const Request r = parse_request(
      R"({"op":"batch","queries":[)"
      R"({"model":"P1","app":"VULCAN"},)"
      R"({"mode":"exact","model":"P2","app":"XGC","runs":64,"seed":7}]})");
  EXPECT_EQ(r.op, Op::kBatch);
  ASSERT_EQ(r.batch.size(), 2u);
  EXPECT_EQ(r.batch[0].mode, "estimate");
  EXPECT_EQ(r.batch[0].model, "P1");
  EXPECT_EQ(r.batch[0].app, "VULCAN");
  EXPECT_EQ(r.batch[1].mode, "exact");
  EXPECT_EQ(r.batch[1].model, "P2");
  EXPECT_EQ(r.batch[1].runs, 64u);
  EXPECT_EQ(r.batch[1].seed, 7u);
}

int error_code_of(const std::string& line) {
  try {
    parse_request(line);
  } catch (const ServeError& e) {
    return e.code();
  }
  return 0;
}

TEST(ParseRequest, MalformedRequestsAre400) {
  EXPECT_EQ(error_code_of("not json"), 400);
  EXPECT_EQ(error_code_of("[1,2]"), 400);
  EXPECT_EQ(error_code_of("{}"), 400);
  EXPECT_EQ(error_code_of(R"({"op":"reticulate"})"), 400);
  // Required members.
  EXPECT_EQ(error_code_of(R"({"op":"query","app":"XGC"})"), 400);
  EXPECT_EQ(error_code_of(R"({"op":"query","model":"P1"})"), 400);
  // Type and range errors.
  EXPECT_EQ(error_code_of(R"({"op":"query","model":1,"app":"X"})"), 400);
  EXPECT_EQ(
      error_code_of(R"({"op":"query","model":"P1","app":"X","runs":0})"),
      400);
  EXPECT_EQ(
      error_code_of(R"({"op":"query","model":"P1","app":"X","runs":1.5})"),
      400);
  EXPECT_EQ(
      error_code_of(R"({"op":"query","model":"P1","app":"X","mode":"fast"})"),
      400);
  // Unknown member: rejected so a typoed override can't silently fall
  // back to defaults.
  EXPECT_EQ(
      error_code_of(R"({"op":"query","model":"P1","app":"X","recal":0.9})"),
      400);
  // Non-query ops take no extra members.
  EXPECT_EQ(error_code_of(R"({"op":"ping","model":"P1"})"), 400);
}

TEST(ParseRequest, MalformedBatchesAre400) {
  // A parse error anywhere fails the whole batch before anything runs.
  EXPECT_EQ(error_code_of(R"({"op":"batch"})"), 400);
  EXPECT_EQ(error_code_of(R"({"op":"batch","queries":{}})"), 400);
  EXPECT_EQ(error_code_of(R"({"op":"batch","queries":[]})"), 400);
  EXPECT_EQ(error_code_of(R"({"op":"batch","queries":[1]})"), 400);
  EXPECT_EQ(
      error_code_of(R"({"op":"batch","queries":[{"model":"P1"}]})"), 400);
  EXPECT_EQ(error_code_of(R"({"op":"batch","queries":[)"
                          R"({"model":"P1","app":"X"}],"extra":1})"),
            400);
  // Entry-level progress streaming is a single-query feature.
  EXPECT_EQ(error_code_of(R"({"op":"batch","queries":[)"
                          R"({"model":"P1","app":"X","progress":true}]})"),
            400);
  // The failing entry is named.
  try {
    parse_request(R"({"op":"batch","queries":[)"
                  R"({"model":"P1","app":"X"},{"model":"P1"}]})");
    FAIL();
  } catch (const ServeError& e) {
    EXPECT_NE(std::string(e.what()).find("queries[1]"), std::string::npos);
  }
}

TEST(ParseRequest, ErrorMessagesNameTheProblem) {
  try {
    parse_request(R"({"op":"query","model":"P1","app":"X","recal":0.9})");
    FAIL();
  } catch (const ServeError& e) {
    EXPECT_NE(std::string(e.what()).find("recal"), std::string::npos);
  }
}

TEST(RenderLines, ErrorAndPong) {
  EXPECT_EQ(render_error_line(429, "full"),
            R"({"ev":"error","code":429,"message":"full"})");
  EXPECT_EQ(render_pong_line("pckpt-serve/1"),
            R"({"ev":"pong","version":"pckpt-serve/1"})");
}

TEST(RenderLines, ProgressLine) {
  exec::ShardProgress p;
  p.shards_done = 2;
  p.shards_total = 4;
  p.items_done = 16;
  p.items_total = 32;
  EXPECT_EQ(render_progress_line("00000000000000ff", p),
            R"({"ev":"progress","key":"00000000000000ff",)"
            R"("shards_done":2,"shards_total":4,)"
            R"("items_done":16,"items_total":32})");
}

TEST(RenderLines, BatchEntryAndTerminalLines) {
  EXPECT_EQ(render_entry_line(3, "00000000000000ff", "exact", false,
                              R"({"total_h":1})"),
            R"({"ev":"entry","i":3,"status":200,"key":"00000000000000ff",)"
            R"("tier":"exact","cached":false,"payload":{"total_h":1}})");
  EXPECT_EQ(render_entry_error_line(1, 404, "unknown application 'X'"),
            R"({"ev":"entry","i":1,"status":404,)"
            R"("message":"unknown application 'X'"})");
  EXPECT_EQ(render_batch_line(3, 2), R"({"ev":"batch","n":3,"ok":2})");
}

TEST(ExtractPayload, RoundTripsExactBytes) {
  const std::string payload =
      R"({"schema":"pckpt-serve/1","total_h":0.0411111210389})";
  const std::string line =
      render_result_line("428e2cf7ccc0fc62", "exact", true, payload);
  const auto got = extract_payload(line);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  // The surrounding envelope carries the metadata.
  EXPECT_NE(line.find(R"("key":"428e2cf7ccc0fc62")"), std::string::npos);
  EXPECT_NE(line.find(R"("cached":true)"), std::string::npos);
}

TEST(ExtractPayload, RoundTripsBatchEntryBytes) {
  const std::string payload =
      R"({"schema":"pckpt-serve/1","total_h":0.0411111210389})";
  // extract_payload returns a view into the line — keep it alive.
  const std::string line =
      render_entry_line(0, "428e2cf7ccc0fc62", "estimate", true, payload);
  const auto got = extract_payload(line);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
  // Failed entries carry no payload.
  const std::string error_line = render_entry_error_line(1, 404, "nope");
  EXPECT_FALSE(extract_payload(error_line).has_value());
}

TEST(ExtractPayload, RejectsNonResultLines) {
  EXPECT_FALSE(extract_payload(render_error_line(500, "boom")).has_value());
  EXPECT_FALSE(extract_payload("{\"ev\":\"pong\"}").has_value());
  EXPECT_FALSE(extract_payload(render_batch_line(2, 2)).has_value());
  EXPECT_FALSE(extract_payload("").has_value());
}

}  // namespace
}  // namespace pckpt::serve
