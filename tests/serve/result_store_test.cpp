#include "serve/result_store.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "random/rng.hpp"
#include "serve/cache_key.hpp"
#include "support/crash_harness.hpp"

namespace pckpt::serve {
namespace {

/// Fresh store path per test, cleaned up on teardown.
class ResultStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "pckpt_store_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ::unlink(path_.c_str());
    ::unlink((path_ + ".journal").c_str());
  }
  void TearDown() override {
    ::unlink(path_.c_str());
    ::unlink((path_ + ".journal").c_str());
  }
  std::string path_;
};

/// Deterministic per-index payload with varied sizes and binary bytes
/// (including NUL and 0xff) so framing bugs can't hide behind text.
std::string payload_for(std::size_t i) {
  std::string p;
  const std::size_t len = 1 + (i * 37) % 300;
  p.reserve(len);
  for (std::size_t j = 0; j < len; ++j) {
    p.push_back(static_cast<char>((i * 131 + j * 7) % 256));
  }
  return p;
}

std::uint64_t key_for(std::size_t i) {
  return fnv1a64("key-" + std::to_string(i));
}

TEST_F(ResultStoreTest, RoundTripAndReopen) {
  {
    ResultStore store(path_);
    EXPECT_EQ(store.stats().records, 0u);
    for (std::size_t i = 0; i < 20; ++i) store.put(key_for(i), payload_for(i));
    EXPECT_EQ(store.stats().records, 20u);
    EXPECT_EQ(store.lookup(key_for(7)), payload_for(7));
    EXPECT_FALSE(store.lookup(0xdeadbeef).has_value());
  }
  ResultStore reopened(path_);
  const auto s = reopened.stats();
  EXPECT_EQ(s.records, 20u);
  EXPECT_EQ(s.log_records, 20u);
  EXPECT_FALSE(s.replayed_journal);
  EXPECT_EQ(s.truncated_bytes, 0u);
  for (std::size_t i = 0; i < 20; ++i) {
    ASSERT_EQ(reopened.lookup(key_for(i)), payload_for(i)) << "record " << i;
  }
}

TEST_F(ResultStoreTest, RePutSupersedes) {
  {
    ResultStore store(path_);
    store.put(42, "old");
    store.put(42, "new");
    EXPECT_EQ(store.lookup(42), "new");
    EXPECT_EQ(store.stats().records, 1u);
    EXPECT_EQ(store.stats().log_records, 2u);  // audit trail keeps both
  }
  ResultStore reopened(path_);
  EXPECT_EQ(reopened.lookup(42), "new");
}

TEST_F(ResultStoreTest, GroupCommitIsAtomicAcrossReopen) {
  {
    ResultStore store(path_);
    std::vector<std::pair<std::uint64_t, std::string>> group;
    for (std::size_t i = 0; i < 5; ++i) {
      group.emplace_back(key_for(i), payload_for(i));
    }
    store.put_group(group);
  }
  ResultStore reopened(path_);
  EXPECT_EQ(reopened.stats().records, 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(reopened.lookup(key_for(i)), payload_for(i));
  }
}

TEST_F(ResultStoreTest, TornTailIsTruncatedCommittedPrefixSurvives) {
  std::uint64_t full_size = 0;
  {
    ResultStore store(path_);
    for (std::size_t i = 0; i < 10; ++i) store.put(key_for(i), payload_for(i));
    full_size = store.stats().log_bytes;
  }
  // Chop the last record mid-payload — a crash that never reached the
  // journal leaves exactly this shape.
  const int fd = ::open(path_.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(fd, static_cast<off_t>(full_size - 13)), 0);
  ::close(fd);

  ResultStore reopened(path_);
  const auto s = reopened.stats();
  EXPECT_EQ(s.records, 9u);
  EXPECT_GT(s.truncated_bytes, 0u);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(reopened.lookup(key_for(i)), payload_for(i));
  }
  EXPECT_FALSE(reopened.lookup(key_for(9)).has_value());
}

TEST_F(ResultStoreTest, CorruptedByteInvalidatesOnlyTheTail) {
  {
    ResultStore store(path_);
    for (std::size_t i = 0; i < 6; ++i) store.put(key_for(i), payload_for(i));
  }
  // Flip a byte inside record 4's payload: 0-3 must survive, 4-5 are
  // discarded (the scan cannot trust anything after a bad frame).
  std::uint64_t offset = 0;
  for (std::size_t i = 0; i < 4; ++i) offset += 32 + payload_for(i).size();
  const int fd = ::open(path_.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  char b = 0;
  ASSERT_EQ(::pread(fd, &b, 1, static_cast<off_t>(offset + 32)), 1);
  b = static_cast<char>(b ^ 0x40);
  ASSERT_EQ(::pwrite(fd, &b, 1, static_cast<off_t>(offset + 32)), 1);
  ::close(fd);

  ResultStore reopened(path_);
  EXPECT_EQ(reopened.stats().records, 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(reopened.lookup(key_for(i)), payload_for(i));
  }
}

// -------------------------------------------------------------------
// Crash injection via the shared fork-based harness
// (tests/support/crash_harness.hpp): a writer child dies mid-write
// after a randomized number of bytes, the parent reopens and asserts
// the committed prefix survives byte-identical. This is the doublewrite
// contract under test at arbitrary torn-write offsets — log appends,
// journal writes, and the window between them are all hit as the
// budget sweeps.
// -------------------------------------------------------------------

TEST_F(ResultStoreTest, CrashAtRandomizedOffsetsNeverLosesCommittedRecords) {
  constexpr int kMaxRecords = 12;
  // Upper bound on bytes one full run writes (journal double-writes
  // everything): generous, the sweep just needs coverage of every phase.
  constexpr long long kMaxBytes = 12000;
  rnd::Xoshiro256 rng(20260808);

  int kills = 0;
  int replays = 0;
  for (int trial = 0; trial < 40; ++trial) {
    ::unlink(path_.c_str());
    ::unlink((path_ + ".journal").c_str());
    const long long budget =
        1 + static_cast<long long>(rng() %
                                   static_cast<std::uint64_t>(kMaxBytes));
    const testsupport::CrashOutcome out = testsupport::run_crashing_child(
        budget, [&](const std::function<void()>& ack) {
          ResultStore store(path_);
          for (int i = 0; i < kMaxRecords; ++i) {
            store.put(key_for(static_cast<std::size_t>(i)),
                      payload_for(static_cast<std::size_t>(i)));
            ack();  // one byte per durable put — the count is exact
          }
        });
    ASSERT_TRUE(out.killed_by_fault() || out.completed());
    if (out.killed_by_fault()) ++kills;

    ResultStore reopened(path_);
    const auto s = reopened.stats();
    if (s.replayed_journal) ++replays;
    ASSERT_GE(static_cast<int>(s.records), out.acks)
        << "trial " << trial << " budget " << budget;
    for (int i = 0; i < out.acks; ++i) {
      ASSERT_EQ(reopened.lookup(key_for(static_cast<std::size_t>(i))),
                payload_for(static_cast<std::size_t>(i)))
          << "trial " << trial << " budget " << budget << " record " << i;
    }
    // If recovery replayed an armed journal, the journal fsync had
    // completed — the in-flight record is durable too.
    if (s.replayed_journal && out.acks < kMaxRecords) {
      ASSERT_EQ(
          reopened.lookup(key_for(static_cast<std::size_t>(out.acks))),
          payload_for(static_cast<std::size_t>(out.acks)))
          << "trial " << trial << " budget " << budget;
    }
    // A reopened store must be writable again.
    reopened.put(0xabcdef, "post-recovery");
    EXPECT_EQ(reopened.lookup(0xabcdef), "post-recovery");
  }
  // The sweep must actually exercise both the kill and the replay path;
  // a silent no-op harness would pass the loop vacuously.
  EXPECT_GT(kills, 10);
  EXPECT_GT(replays, 0);
}

// -------------------------------------------------------------------
// Live/dead accounting and compaction (docs/SERVING.md): superseded
// frames are dead bytes; compact() rewrites the log to exactly the
// live set through the same doublewrite journal.
// -------------------------------------------------------------------

TEST_F(ResultStoreTest, LiveDeadAccountingTracksSupersededFrames) {
  ResultStore store(path_);
  EXPECT_EQ(store.stats().dead_bytes, 0u);
  for (std::size_t i = 0; i < 8; ++i) store.put(key_for(i), payload_for(i));
  auto s = store.stats();
  EXPECT_EQ(s.live_records, 8u);
  EXPECT_EQ(s.dead_bytes, 0u);

  // Superseding keys 0-3 retires exactly their old frames' bytes.
  std::uint64_t expected_dead = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    expected_dead += 32 + payload_for(i).size();
    store.put(key_for(i), payload_for(i + 100));
  }
  s = store.stats();
  EXPECT_EQ(s.live_records, 8u);
  EXPECT_EQ(s.log_records, 12u);
  EXPECT_EQ(s.dead_bytes, expected_dead);
}

TEST_F(ResultStoreTest, AccountingSurvivesReopen) {
  std::uint64_t dead = 0;
  {
    ResultStore store(path_);
    for (std::size_t i = 0; i < 6; ++i) store.put(key_for(i), payload_for(i));
    for (std::size_t i = 0; i < 3; ++i) {
      store.put(key_for(i), payload_for(i + 50));
    }
    dead = store.stats().dead_bytes;
    EXPECT_GT(dead, 0u);
  }
  ResultStore reopened(path_);
  EXPECT_EQ(reopened.stats().dead_bytes, dead);
  EXPECT_EQ(reopened.stats().live_records, 6u);
}

TEST_F(ResultStoreTest, CompactDropsDeadBytesAndPreservesLivePayloads) {
  ResultStore store(path_);
  for (std::size_t i = 0; i < 10; ++i) store.put(key_for(i), payload_for(i));
  for (std::size_t i = 0; i < 5; ++i) {
    store.put(key_for(i), payload_for(i + 200));
  }
  const auto before = store.stats();
  EXPECT_GT(before.dead_bytes, 0u);

  const std::uint64_t reclaimed = store.compact();
  EXPECT_EQ(reclaimed, before.dead_bytes);
  const auto after = store.stats();
  EXPECT_EQ(after.live_records, 10u);
  EXPECT_EQ(after.log_records, 10u);
  EXPECT_EQ(after.dead_bytes, 0u);
  EXPECT_EQ(after.log_bytes, before.log_bytes - reclaimed);
  EXPECT_EQ(after.compactions, 1u);
  EXPECT_EQ(after.compacted_bytes, reclaimed);

  // A second compact is a no-op.
  EXPECT_EQ(store.compact(), 0u);
  EXPECT_EQ(store.stats().compactions, 1u);

  // Every live key reads back byte-identical, in-process and across a
  // reopen of the rewritten log.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(store.lookup(key_for(i)), payload_for(i + 200));
  }
  ResultStore reopened(path_);
  EXPECT_EQ(reopened.stats().records, 10u);
  EXPECT_EQ(reopened.stats().log_records, 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(reopened.lookup(key_for(i)),
              i < 5 ? payload_for(i + 200) : payload_for(i));
  }
}

TEST_F(ResultStoreTest, CompactedStoreStaysWritable) {
  ResultStore store(path_);
  store.put(1, "a");
  store.put(1, "b");
  store.compact();
  store.put(2, "c");
  store.put(1, "d");
  EXPECT_EQ(store.lookup(1), "d");
  EXPECT_EQ(store.lookup(2), "c");
  ResultStore reopened(path_);
  EXPECT_EQ(reopened.lookup(1), "d");
  EXPECT_EQ(reopened.lookup(2), "c");
}

TEST_F(ResultStoreTest, OnOpenCompactionTriggersOnDeadBytesThreshold) {
  {
    ResultStore store(path_);
    for (std::size_t i = 0; i < 6; ++i) store.put(key_for(i), payload_for(i));
    for (std::size_t i = 0; i < 6; ++i) {
      store.put(key_for(i), payload_for(i + 10));
    }
    EXPECT_GT(store.stats().dead_bytes, 0u);
  }
  // Threshold above the dead volume: reopen leaves the log untouched.
  {
    CompactionConfig cfg;
    cfg.on_open_min_dead_bytes = 1u << 30;
    ResultStore untouched(path_, cfg);
    EXPECT_EQ(untouched.stats().log_records, 12u);
    EXPECT_EQ(untouched.stats().compactions, 0u);
  }
  // Threshold of one byte: any dead volume triggers the rewrite.
  CompactionConfig cfg;
  cfg.on_open_min_dead_bytes = 1;
  ResultStore compacted(path_, cfg);
  const auto s = compacted.stats();
  EXPECT_EQ(s.log_records, 6u);
  EXPECT_EQ(s.dead_bytes, 0u);
  EXPECT_EQ(s.compactions, 1u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(compacted.lookup(key_for(i)), payload_for(i + 10));
  }
}

// Compaction crash sweep: kill the rewrite at randomized byte offsets
// (journal write, log truncate+rewrite, and the disarm window are all
// hit as the budget sweeps) and assert the reopened store's live set is
// byte-identical to the uncompacted one — the rewrite either fully
// happened or never touched the log, never anything in between.
TEST_F(ResultStoreTest, CompactionCrashAtRandomizedOffsetsPreservesLiveSet) {
  constexpr std::size_t kRecords = 10;
  // Expected live set: keys 0..9, the first half superseded once.
  auto expected = [](std::size_t i) {
    return i < 5 ? payload_for(i + 300) : payload_for(i);
  };
  std::uint64_t full_log_bytes = 0;
  {
    ResultStore store(path_);
    for (std::size_t i = 0; i < kRecords; ++i) {
      store.put(key_for(i), payload_for(i));
    }
    for (std::size_t i = 0; i < 5; ++i) {
      store.put(key_for(i), payload_for(i + 300));
    }
    full_log_bytes = store.stats().log_bytes;
  }
  // One unlimited dry run to learn how many bytes a full compaction
  // writes, so the budget sweep covers every phase of the rewrite.
  long long rewrite_bytes = 0;
  {
    const auto out = testsupport::run_crashing_child(
        -1, [&](const std::function<void()>&) {
          ResultStore store(path_);
          store.compact();
        });
    ASSERT_TRUE(out.completed());
    ResultStore compacted(path_);
    ASSERT_EQ(compacted.stats().dead_bytes, 0u);
    // Journal (header + group) + log group again: bound with slack.
    rewrite_bytes = static_cast<long long>(2 * full_log_bytes + 256);
  }

  rnd::Xoshiro256 rng(20260809);
  int kills = 0;
  int replays = 0;
  int compact_survived = 0;
  for (int trial = 0; trial < 40; ++trial) {
    // Restage the uncompacted store for this trial.
    ::unlink(path_.c_str());
    ::unlink((path_ + ".journal").c_str());
    {
      ResultStore store(path_);
      for (std::size_t i = 0; i < kRecords; ++i) {
        store.put(key_for(i), payload_for(i));
      }
      for (std::size_t i = 0; i < 5; ++i) {
        store.put(key_for(i), payload_for(i + 300));
      }
    }
    const long long budget =
        1 + static_cast<long long>(
                rng() % static_cast<std::uint64_t>(rewrite_bytes));
    const auto out = testsupport::run_crashing_child(
        budget, [&](const std::function<void()>& ack) {
          ResultStore store(path_);
          store.compact();
          ack();  // the rewrite committed (journal fsync passed)
        });
    ASSERT_TRUE(out.killed_by_fault() || out.completed())
        << "trial " << trial << " budget " << budget;
    if (out.killed_by_fault()) ++kills;

    ResultStore reopened(path_);
    const auto s = reopened.stats();
    if (s.replayed_journal) ++replays;
    if (s.dead_bytes == 0) ++compact_survived;
    // The live set is byte-identical whether or not the rewrite
    // committed before the kill.
    ASSERT_EQ(s.live_records, kRecords)
        << "trial " << trial << " budget " << budget;
    for (std::size_t i = 0; i < kRecords; ++i) {
      ASSERT_EQ(reopened.lookup(key_for(i)), expected(i))
          << "trial " << trial << " budget " << budget << " record " << i;
    }
    // An acked compact reached its commit point: the reopened log must
    // hold exactly the live set.
    if (out.acks > 0) {
      ASSERT_EQ(s.log_records, kRecords)
          << "trial " << trial << " budget " << budget;
      ASSERT_EQ(s.dead_bytes, 0u);
    }
    // Either way the store stays writable.
    reopened.put(0xfeed, "post-compaction-crash");
    EXPECT_EQ(reopened.lookup(0xfeed), "post-compaction-crash");
  }
  // The sweep must hit the kill path, the journal-replay path, and at
  // least one trial where the rewrite survived.
  EXPECT_GT(kills, 10);
  EXPECT_GT(replays, 0);
  EXPECT_GT(compact_survived, 0);
}

}  // namespace
}  // namespace pckpt::serve
