#include "exec/fair_share.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace exec = pckpt::exec;

TEST(FairShareScheduler, ZeroThreadsPromotedToOne) {
  exec::FairShareScheduler sched(0);
  EXPECT_EQ(sched.size(), 1u);
  EXPECT_EQ(sched.active_campaigns(), 0u);
}

TEST(FairShareScheduler, RunsEveryTaskExactlyOnce) {
  exec::FairShareScheduler sched(4);
  exec::CampaignExecutor ex(sched);
  EXPECT_EQ(ex.concurrency(), 4u);
  std::vector<std::atomic<int>> hits(100);
  ex.run(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(FairShareScheduler, RunPropagatesFirstException) {
  exec::FairShareScheduler sched(2);
  exec::CampaignExecutor ex(sched);
  EXPECT_THROW(
      ex.run(16,
             [](std::size_t i) {
               if (i == 3) throw std::runtime_error("shard 3 failed");
             }),
      std::runtime_error);
  // The executor stays usable after a failed batch.
  std::atomic<int> ran{0};
  ex.run(8, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8);
}

TEST(FairShareScheduler, SequentialCampaignsReuseThePool) {
  exec::FairShareScheduler sched(2);
  for (int round = 0; round < 3; ++round) {
    exec::CampaignExecutor ex(sched);
    EXPECT_EQ(sched.active_campaigns(), 1u);
    std::atomic<int> ran{0};
    ex.run(10, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 10);
  }
  EXPECT_EQ(sched.active_campaigns(), 0u);
}

// The fair-share property itself, made deterministic with one worker:
// two campaigns whose batches are both queued before the worker starts
// must see their tasks served strictly alternately (one task per
// campaign per scan round), so the completion sequence interleaves
// instead of draining one queue first.
TEST(FairShareScheduler, SingleWorkerAlternatesBetweenCampaigns) {
  std::mutex order_mu;
  std::string order;  // 'A'/'B' per completed task, in execution order

  exec::FairShareScheduler sched(1);
  exec::CampaignExecutor ex_a(sched);
  exec::CampaignExecutor ex_b(sched);

  // Gate the worker: campaign A's first task blocks until B's batch is
  // queued, guaranteeing both queues are populated before any scan.
  std::mutex gate;
  gate.lock();
  std::thread ta([&] {
    ex_a.run(4, [&](std::size_t) {
      std::lock_guard<std::mutex> hold(gate);  // first task waits here
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back('A');
    });
  });
  std::thread tb([&] {
    ex_b.run(4, [&](std::size_t) {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back('B');
    });
  });
  // Wait until both batches are fully queued: 8 tasks minus the one the
  // worker is already holding gated (the worker always takes campaign
  // A's first task — A registered first, so the scan finds it first).
  while (sched.queued() != 7) std::this_thread::yield();
  gate.unlock();
  ta.join();
  tb.join();

  // One worker, round-robin over two non-empty queues: strictly
  // alternating service. The first task taken (before B enqueued) is
  // A's, so the exact sequence is ABABABAB.
  EXPECT_EQ(order, "ABABABAB");
}

// With more work in one campaign than the other, the small campaign
// finishes within its own share of scan rounds — it is never queued
// behind the large campaign's backlog.
TEST(FairShareScheduler, SmallCampaignIsNotStarvedByLargeOne) {
  std::mutex order_mu;
  std::vector<char> order;

  exec::FairShareScheduler sched(1);
  exec::CampaignExecutor ex_big(sched);
  exec::CampaignExecutor ex_small(sched);

  std::mutex gate;
  gate.lock();
  std::thread tbig([&] {
    ex_big.run(32, [&](std::size_t) {
      std::lock_guard<std::mutex> hold(gate);
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back('L');
    });
  });
  std::thread tsmall([&] {
    ex_small.run(4, [&](std::size_t) {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back('S');
    });
  });
  // 36 tasks total minus the gated in-flight first large-campaign task.
  while (sched.queued() != 35) std::this_thread::yield();
  gate.unlock();
  tbig.join();
  tsmall.join();

  ASSERT_EQ(order.size(), 36u);
  // All 4 small-campaign tasks complete within the first 8 slots
  // (strict alternation while both queues are non-empty).
  std::size_t last_small = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == 'S') last_small = i;
  }
  EXPECT_LT(last_small, 8u);
}

TEST(FairShareScheduler, ConcurrentCampaignsAllComplete) {
  exec::FairShareScheduler sched(4);
  std::atomic<int> total{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 6; ++c) {
    threads.emplace_back([&] {
      exec::CampaignExecutor ex(sched);
      ex.run(50, [&](std::size_t) { total.fetch_add(1); });
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(total.load(), 300);
  EXPECT_EQ(sched.active_campaigns(), 0u);
}
