#include "exec/parallel_campaign.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "exec/thread_pool.hpp"

namespace exec = pckpt::exec;

// ---------------------------------------------------------------------
// Shard planning.
// ---------------------------------------------------------------------

TEST(ShardPlan, EmptyCampaignHasNoShards) {
  const auto plan = exec::plan_shards(0);
  EXPECT_EQ(plan.count(), 0u);
}

TEST(ShardPlan, SingleTrial) {
  const auto plan = exec::plan_shards(1);
  ASSERT_EQ(plan.count(), 1u);
  EXPECT_EQ(plan.begin(0), 0u);
  EXPECT_EQ(plan.end(0), 1u);
}

TEST(ShardPlan, ExactMultiple) {
  const auto plan = exec::plan_shards(16, 8);
  ASSERT_EQ(plan.count(), 2u);
  EXPECT_EQ(plan.begin(0), 0u);
  EXPECT_EQ(plan.end(0), 8u);
  EXPECT_EQ(plan.begin(1), 8u);
  EXPECT_EQ(plan.end(1), 16u);
}

TEST(ShardPlan, LastShardIsClamped) {
  const auto plan = exec::plan_shards(13, 5);
  ASSERT_EQ(plan.count(), 3u);
  EXPECT_EQ(plan.end(2), 13u);
  EXPECT_EQ(plan.end(2) - plan.begin(2), 3u);
}

TEST(ShardPlan, ZeroShardSizeIsClampedToOne) {
  const auto plan = exec::plan_shards(4, 0);
  EXPECT_EQ(plan.shard_size, 1u);
  EXPECT_EQ(plan.count(), 4u);
}

TEST(ShardPlan, ShardsTileTheRangeWithoutGapsOrOverlap) {
  for (std::size_t total : {1u, 7u, 8u, 9u, 200u, 500u}) {
    const auto plan = exec::plan_shards(total);
    std::size_t covered = 0;
    std::size_t expect_begin = 0;
    for (std::size_t s = 0; s < plan.count(); ++s) {
      EXPECT_EQ(plan.begin(s), expect_begin);
      EXPECT_GT(plan.end(s), plan.begin(s));
      covered += plan.end(s) - plan.begin(s);
      expect_begin = plan.end(s);
    }
    EXPECT_EQ(covered, total);
  }
}

TEST(ShardPlan, PlanIsIndependentOfThreadCount) {
  // The determinism contract's first clause, stated as a test: nothing in
  // the plan type even *sees* an executor.
  const auto a = exec::plan_shards(100);
  const auto b = exec::plan_shards(100);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.shard_size, b.shard_size);
}

// ---------------------------------------------------------------------
// run_sharded.
// ---------------------------------------------------------------------

TEST(RunSharded, EachShardRunsExactlyOnce) {
  exec::ThreadPool pool(4);
  exec::ThreadPoolExecutor ex(pool);
  const auto plan = exec::plan_shards(101, 8);

  std::mutex m;
  std::set<std::size_t> seen;
  std::size_t items = 0;
  const auto stats = exec::run_sharded(
      ex, plan, [&](std::size_t shard, std::size_t begin, std::size_t end) {
        std::lock_guard<std::mutex> lock(m);
        EXPECT_TRUE(seen.insert(shard).second) << "shard ran twice";
        EXPECT_EQ(begin, plan.begin(shard));
        EXPECT_EQ(end, plan.end(shard));
        items += end - begin;
      });
  EXPECT_EQ(seen.size(), plan.count());
  EXPECT_EQ(items, 101u);
  EXPECT_EQ(stats.shards, plan.count());
  EXPECT_EQ(stats.items, 101u);
  EXPECT_GE(stats.elapsed_seconds, 0.0);
  EXPECT_GT(stats.items_per_second, 0.0);
}

TEST(RunSharded, ProgressHookFiresOncePerShard) {
  exec::SerialExecutor ex;
  const auto plan = exec::plan_shards(20, 8);  // 3 shards: 8 + 8 + 4

  std::vector<exec::ShardProgress> events;
  exec::run_sharded(
      ex, plan, [](std::size_t, std::size_t, std::size_t) {},
      [&](const exec::ShardProgress& p) { events.push_back(p); });

  ASSERT_EQ(events.size(), 3u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].shards_done, i + 1);
    EXPECT_EQ(events[i].shards_total, 3u);
    EXPECT_EQ(events[i].items_total, 20u);
  }
  EXPECT_EQ(events.back().items_done, 20u);
}

TEST(RunSharded, EmptyPlanCallsNothing) {
  exec::SerialExecutor ex;
  bool called = false;
  const auto stats = exec::run_sharded(
      ex, exec::plan_shards(0),
      [&](std::size_t, std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
  EXPECT_EQ(stats.shards, 0u);
  EXPECT_EQ(stats.items, 0u);
}

TEST(RunSharded, ShardExceptionPropagates) {
  exec::ThreadPool pool(2);
  exec::ThreadPoolExecutor ex(pool);
  EXPECT_THROW(
      exec::run_sharded(ex, exec::plan_shards(32),
                        [](std::size_t shard, std::size_t, std::size_t) {
                          if (shard == 2) {
                            throw std::runtime_error("shard failure");
                          }
                        }),
      std::runtime_error);
}

TEST(RunSharded, ProgressCountsAreConsistentUnderParallelism) {
  exec::ThreadPool pool(7);
  exec::ThreadPoolExecutor ex(pool);
  const auto plan = exec::plan_shards(96, 8);

  std::mutex m;
  std::size_t last_done = 0;
  bool monotonic = true;
  exec::run_sharded(
      ex, plan, [](std::size_t, std::size_t, std::size_t) {},
      [&](const exec::ShardProgress& p) {
        std::lock_guard<std::mutex> lock(m);
        // Hook invocations are serialized; shards_done must strictly grow.
        monotonic = monotonic && p.shards_done == last_done + 1;
        last_done = p.shards_done;
        EXPECT_LE(p.items_done, p.items_total);
      });
  EXPECT_TRUE(monotonic);
  EXPECT_EQ(last_done, plan.count());
}
