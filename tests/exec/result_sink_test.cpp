#include "exec/result_sink.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

namespace exec = pckpt::exec;

namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

}  // namespace

// ---------------------------------------------------------------------
// Escaping and number formatting.
// ---------------------------------------------------------------------

TEST(JsonlRow, EscapesSpecialCharacters) {
  EXPECT_EQ(exec::JsonlRow::escape("plain"), "plain");
  EXPECT_EQ(exec::JsonlRow::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(exec::JsonlRow::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(exec::JsonlRow::escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(exec::JsonlRow::escape("tab\there"), "tab\\there");
  EXPECT_EQ(exec::JsonlRow::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonlRow, NumberFormatting) {
  EXPECT_EQ(exec::JsonlRow::number(1.5), "1.5");
  EXPECT_EQ(exec::JsonlRow::number(0.0), "0");
  EXPECT_EQ(exec::JsonlRow::number(std::nan("")), "null");
  EXPECT_EQ(exec::JsonlRow::number(std::numeric_limits<double>::infinity()),
            "null");
  EXPECT_EQ(exec::JsonlRow::number(-std::numeric_limits<double>::infinity()),
            "null");
}

TEST(JsonlRow, RendersTypedFieldsInInsertionOrder) {
  exec::JsonlRow row;
  row.add("name", "fig6a").add("runs", std::size_t{200}).add("x", 2.5);
  row.add("ok", true).add("n", -3);
  row.add_raw("raw", "[1,2]");
  EXPECT_EQ(row.str(),
            "{\"name\":\"fig6a\",\"runs\":200,\"x\":2.5,\"ok\":true,"
            "\"n\":-3,\"raw\":[1,2]}");
}

TEST(JsonlRow, EmptyRowIsEmptyObject) {
  exec::JsonlRow row;
  EXPECT_TRUE(row.empty());
  EXPECT_EQ(row.str(), "{}");
}

TEST(JsonlRow, KeysAreEscapedToo) {
  exec::JsonlRow row;
  row.add("we\"ird", 1);
  EXPECT_EQ(row.str(), "{\"we\\\"ird\":1}");
}

// ---------------------------------------------------------------------
// File sink.
// ---------------------------------------------------------------------

TEST(JsonlSink, WritesOneLinePerRow) {
  const std::string path = temp_path("sink_basic.jsonl");
  {
    exec::JsonlSink sink(path);
    for (int i = 0; i < 3; ++i) {
      exec::JsonlRow row;
      row.add("i", i);
      sink.write(row);
    }
    EXPECT_EQ(sink.rows_written(), 3u);
    EXPECT_EQ(sink.path(), path);
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "{\"i\":0}");
  EXPECT_EQ(lines[2], "{\"i\":2}");
}

TEST(JsonlSink, TruncatesByDefaultAppendsWhenAsked) {
  const std::string path = temp_path("sink_append.jsonl");
  {
    exec::JsonlSink sink(path);
    exec::JsonlRow row;
    row.add("gen", 1);
    sink.write(row);
  }
  {
    exec::JsonlSink sink(path, /*append=*/true);
    exec::JsonlRow row;
    row.add("gen", 2);
    sink.write(row);
  }
  EXPECT_EQ(read_lines(path).size(), 2u);

  // A fresh non-append sink starts the file over.
  {
    exec::JsonlSink sink(path);
    exec::JsonlRow row;
    row.add("gen", 3);
    sink.write(row);
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "{\"gen\":3}");
}

TEST(JsonlSink, ThrowsOnUnopenablePath) {
  EXPECT_THROW(exec::JsonlSink("/nonexistent-dir/x/y.jsonl"),
               std::runtime_error);
}
