#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/executor.hpp"

namespace exec = pckpt::exec;

TEST(ThreadPool, RunsPostedTasks) {
  std::atomic<int> counter{0};
  {
    exec::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < 100; ++i) {
      pool.post([&counter] { counter.fetch_add(1); });
    }
  }  // destructor drains the queue
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroThreadsPromotedToOne) {
  exec::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
}

TEST(ThreadPool, SubmitReturnsValue) {
  exec::ThreadPool pool(2);
  auto f = pool.submit([] { return std::string("hello"); });
  auto g = pool.submit([] { return 2 * 21; });
  EXPECT_EQ(f.get(), "hello");
  EXPECT_EQ(g.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  // The pool is destroyed (workers joined) before the future is read, so
  // the stored exception's final release happens on this thread — without
  // the join, TSan cannot see the refcount ordering inside libstdc++'s
  // exception_ptr and reports a false race on the exception object.
  std::future<int> f;
  {
    exec::ThreadPool pool(2);
    f = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
  }
  EXPECT_THROW(
      {
        try {
          f.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "task failed");
          throw;
        }
      },
      std::runtime_error);
}

TEST(ThreadPool, DestructionWhileBusyDrainsQueue) {
  // Enqueue far more slow tasks than workers; destroying the pool must
  // still run every one of them (drain semantics), not drop the queue.
  std::atomic<int> done{0};
  {
    exec::ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.post([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        done.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, QueuedIsZeroAfterDrain) {
  exec::ThreadPool pool(2);
  pool.submit([] {}).get();
  EXPECT_EQ(pool.queued(), 0u);
}

TEST(ThreadPoolExecutor, RunsEveryIndexExactlyOnce) {
  exec::ThreadPool pool(4);
  exec::ThreadPoolExecutor ex(pool);
  EXPECT_EQ(ex.concurrency(), 4u);

  constexpr std::size_t kCount = 257;
  std::vector<std::atomic<int>> hits(kCount);
  ex.run(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolExecutor, EmptyBatchIsANoop) {
  exec::ThreadPool pool(2);
  exec::ThreadPoolExecutor ex(pool);
  bool called = false;
  ex.run(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolExecutor, RethrowsFirstTaskException) {
  exec::ThreadPool pool(4);
  exec::ThreadPoolExecutor ex(pool);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      ex.run(64,
             [&](std::size_t i) {
               if (i == 13) throw std::runtime_error("shard 13 exploded");
               completed.fetch_add(1);
             }),
      std::runtime_error);
  // run() must not leave stragglers behind: by the time it returns
  // (throwing), every dispatched task has finished or been skipped.
  EXPECT_LE(completed.load(), 63);
}

TEST(ThreadPoolExecutor, PoolReusableAfterException) {
  exec::ThreadPool pool(2);
  exec::ThreadPoolExecutor ex(pool);
  EXPECT_THROW(ex.run(4,
                      [](std::size_t) {
                        throw std::runtime_error("boom");
                      }),
               std::runtime_error);
  std::atomic<int> ok{0};
  ex.run(8, [&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 8);
}

TEST(SerialExecutor, RunsInIndexOrder) {
  exec::SerialExecutor ex;
  EXPECT_EQ(ex.concurrency(), 1u);
  std::vector<std::size_t> order;
  ex.run(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(SerialExecutor, PropagatesExceptions) {
  exec::SerialExecutor ex;
  EXPECT_THROW(ex.run(3,
                      [](std::size_t i) {
                        if (i == 1) throw std::logic_error("bad");
                      }),
               std::logic_error);
}

TEST(ResolveJobs, ExplicitValuePassesThrough) {
  EXPECT_EQ(exec::resolve_jobs(1), 1u);
  EXPECT_EQ(exec::resolve_jobs(7), 7u);
}

TEST(ResolveJobs, AutoIsAtLeastOne) {
  EXPECT_GE(exec::resolve_jobs(0), 1u);
}
