#include "support/crash_harness.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <system_error>

#include "ckpt/durable_log.hpp"

namespace pckpt::testsupport {

static_assert(kWriteFaultExitCode == ckpt::kWriteFaultExitCode,
              "harness exit code must match the DurableLog fault hook");

CrashOutcome run_crashing_child(
    long long fault_budget_bytes,
    const std::function<void(const std::function<void()>& ack)>& body) {
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    throw std::system_error(errno, std::generic_category(),
                            "crash_harness: pipe");
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    const int saved = errno;
    ::close(pipefd[0]);
    ::close(pipefd[1]);
    throw std::system_error(saved, std::generic_category(),
                            "crash_harness: fork");
  }
  if (pid == 0) {
    ::close(pipefd[0]);
    const int wfd = pipefd[1];
    ckpt::DurableLog::set_write_fault_budget(fault_budget_bytes);
    const std::function<void()> ack = [wfd] {
      const char one = '!';
      // The pipe outlives the child and the parent drains it after
      // waitpid, so a single-byte write never blocks or fails here.
      (void)!::write(wfd, &one, 1);
    };
    try {
      body(ack);
    } catch (...) {
      ::_exit(kChildThrewExitCode);
    }
    ::_exit(0);
  }
  ::close(pipefd[1]);

  CrashOutcome out;
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) {
      ::close(pipefd[0]);
      throw std::system_error(errno, std::generic_category(),
                              "crash_harness: waitpid");
    }
  }
  // Count acks after the child is gone: the pipe buffer holds every
  // byte written (the counts here are far below PIPE_BUF), and EOF is
  // guaranteed once the child's end closed at exit.
  char buf[256];
  while (true) {
    const ssize_t n = ::read(pipefd[0], buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    out.acks += static_cast<int>(n);
  }
  ::close(pipefd[0]);

  if (WIFEXITED(status)) {
    out.exited = true;
    out.exit_status = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    out.signaled = true;
    out.term_signal = WTERMSIG(status);
  }
  return out;
}

}  // namespace pckpt::testsupport
