#pragma once

#include <functional>

/// \file crash_harness.hpp
/// Fork-based write-fault crash injection, shared by the serve
/// (result-store) and ckpt (durable-log / campaign-checkpoint) suites.
///
/// The harness forks a child that arms `DurableLog`'s write-fault
/// budget and runs a caller-provided body. The body acknowledges each
/// durably committed unit of work by calling `ack()` (one byte down a
/// pipe); when the budget runs out mid-write the child fsyncs the torn
/// prefix and `_exit(kWriteFaultExitCode)`s — the closest userspace
/// approximation of power loss a test can stage. The parent reports how
/// many acks arrived before the crash plus the child's exit status, and
/// the caller then reopens the files to assert that everything
/// acknowledged survived recovery.

namespace pckpt::testsupport {

/// Exit status of a child killed by the injected write fault — equals
/// `ckpt::kWriteFaultExitCode` (pinned by a static_assert in the .cpp).
inline constexpr int kWriteFaultExitCode = 42;

/// Exit status when the child body throws instead of finishing.
inline constexpr int kChildThrewExitCode = 97;

struct CrashOutcome {
  int acks = 0;           ///< committed units acknowledged pre-crash
  bool exited = false;    ///< child terminated via _exit/exit
  int exit_status = -1;   ///< exit status when `exited`
  bool signaled = false;  ///< child was killed by a signal instead
  int term_signal = 0;    ///< the signal when `signaled`
  /// Convenience: the child died on the injected write fault.
  bool killed_by_fault() const {
    return exited && exit_status == kWriteFaultExitCode;
  }
  /// Convenience: the child finished its body normally.
  bool completed() const { return exited && exit_status == 0; }
};

/// Fork a child with `fault_budget_bytes` of physical writes allowed
/// (negative = unlimited, the child then runs to completion). The child
/// runs `body(ack)` and exits 0; each `ack()` signals one durably
/// committed unit to the parent. Exceptions in the body exit with
/// `kChildThrewExitCode`. The parent blocks until the child terminates.
CrashOutcome run_crashing_child(
    long long fault_budget_bytes,
    const std::function<void(const std::function<void()>& ack)>& body);

}  // namespace pckpt::testsupport
