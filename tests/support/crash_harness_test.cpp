#include "support/crash_harness.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <stdexcept>
#include <string>

#include "ckpt/durable_log.hpp"

namespace pckpt::testsupport {
namespace {

class CrashHarnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/pckpt_crash_harness_" + std::to_string(::getpid()) + ".log";
    ::unlink(path_.c_str());
    ::unlink((path_ + ".journal").c_str());
  }
  void TearDown() override {
    ::unlink(path_.c_str());
    ::unlink((path_ + ".journal").c_str());
  }

  std::string path_;
};

TEST_F(CrashHarnessTest, UnlimitedBudgetRunsToCompletionAndCountsAcks) {
  const CrashOutcome out = run_crashing_child(-1, [&](const auto& ack) {
    ckpt::DurableLog log(path_);
    for (int i = 0; i < 5; ++i) {
      log.append(static_cast<std::uint64_t>(i), "payload");
      ack();
    }
  });
  EXPECT_TRUE(out.completed());
  EXPECT_FALSE(out.killed_by_fault());
  EXPECT_FALSE(out.signaled);
  EXPECT_EQ(out.acks, 5);

  std::size_t replayed = 0;
  ckpt::DurableLog log(path_,
                       [&](std::uint64_t, std::string_view) { ++replayed; });
  EXPECT_EQ(replayed, 5u);
}

TEST_F(CrashHarnessTest, ThrowingBodyIsReportedAsChildThrew) {
  const CrashOutcome out = run_crashing_child(-1, [](const auto& ack) {
    ack();
    throw std::runtime_error("boom");
  });
  EXPECT_TRUE(out.exited);
  EXPECT_EQ(out.exit_status, kChildThrewExitCode);
  EXPECT_EQ(out.acks, 1);
}

TEST_F(CrashHarnessTest, ZeroBudgetKillsOnTheFirstPhysicalWrite) {
  const CrashOutcome out = run_crashing_child(0, [&](const auto& ack) {
    ckpt::DurableLog log(path_);
    log.append(1, "abc");
    ack();
  });
  EXPECT_TRUE(out.killed_by_fault());
  EXPECT_EQ(out.exit_status, kWriteFaultExitCode);
  EXPECT_EQ(out.acks, 0);
}

// Exact budget accounting for one append of payload "abc": the record
// frame is 32 (header) + 3 = 35 bytes; the commit writes the journal
// (40-byte header + the 35-byte group = 75 bytes), then the log append
// (35 bytes) — 110 physical bytes in total.
TEST_F(CrashHarnessTest, BudgetAccountingIsByteExact) {
  const auto one_put = [&](const auto& ack) {
    ckpt::DurableLog log(path_);
    log.append(7, "abc");
    ack();
  };

  // The full 110 bytes: every write fits, the child completes.
  CrashOutcome out = run_crashing_child(110, one_put);
  EXPECT_TRUE(out.completed());
  EXPECT_EQ(out.acks, 1);
  TearDown();

  // One byte short: the journal fsync (the commit point) has happened,
  // the log append is torn — no ack, but recovery must replay the
  // record because the group was committed.
  out = run_crashing_child(109, one_put);
  EXPECT_TRUE(out.killed_by_fault());
  EXPECT_EQ(out.acks, 0);
  {
    std::size_t frames = 0;
    std::string got;
    ckpt::DurableLog log(path_, [&](std::uint64_t key, std::string_view p) {
      ++frames;
      EXPECT_EQ(key, 7u);
      got.assign(p);
    });
    EXPECT_EQ(frames, 1u);
    EXPECT_EQ(got, "abc");
    EXPECT_TRUE(log.stats().replayed_journal);
  }
  TearDown();

  // Not even the journal write completes: the commit point was never
  // reached, so the record is (correctly) gone and the log is empty.
  out = run_crashing_child(74, one_put);
  EXPECT_TRUE(out.killed_by_fault());
  EXPECT_EQ(out.acks, 0);
  {
    std::size_t frames = 0;
    ckpt::DurableLog log(path_,
                         [&](std::uint64_t, std::string_view) { ++frames; });
    EXPECT_EQ(frames, 0u);
    EXPECT_FALSE(log.stats().replayed_journal);
  }
}

}  // namespace
}  // namespace pckpt::testsupport
