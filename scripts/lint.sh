#!/usr/bin/env bash
# Local mirror of the CI static-analysis job (docs/STATIC_ANALYSIS.md).
#
# Builds the pckpt_lint tool if needed (into build/, configured with
# compile commands exported so clang-tidy can reuse the same tree), runs
# the in-tree linter as a hard gate, then runs clang-tidy with the pinned
# .clang-tidy profile if it is installed. Exit status is nonzero iff any
# gate fails, so this is safe to wire into a pre-push hook.
#
# Usage: scripts/lint.sh [build-dir]     (default: build)
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-build}"
cd "$ROOT"

status=0

# --- build the linter (and compile_commands.json) if needed -----------
if [ ! -x "$BUILD/tools/pckpt_lint" ] || [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "== configuring $BUILD (WERROR + compile commands)"
  cmake -B "$BUILD" -S . -DPCKPT_WERROR=ON \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON || exit 2
  echo "== building pckpt_lint"
  cmake --build "$BUILD" --target pckpt_lint_cli -j"$(nproc)" || exit 2
fi

# --- gate 1: pckpt_lint ----------------------------------------------
# tests/ and examples/ are in scope too: the project pass (layering,
# guarded-by, lock-order) and the determinism rules apply repo-wide,
# with `// lint: <slug>` waivers where test code legitimately deviates.
echo "== pckpt_lint src tools bench tests examples"
if ! "$BUILD/tools/pckpt_lint" src tools bench tests examples; then
  status=1
fi

# --- gate 2: clang-tidy (skipped with a warning if not installed) -----
if command -v run-clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (pinned profile, full compile_commands.json)"
  if ! run-clang-tidy -p "$BUILD" -quiet \
      "$ROOT/(src|tools|bench)/.*\.(cpp|cc)$"; then
    status=1
  fi
elif command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (run-clang-tidy missing; linting sources serially)"
  find src tools bench -name '*.cpp' -print0 |
    xargs -0 -n8 clang-tidy -p "$BUILD" -quiet || status=1
else
  echo "!! clang-tidy not installed; skipping tidy gate (CI still runs it)"
fi

exit $status
