#!/usr/bin/env sh
# Regenerate every paper table/figure (plus the ablations and extension
# experiments) into experiment_results/. Usage:
#   scripts/run_all_experiments.sh [build-dir] [--runs=N]
set -eu

BUILD_DIR="${1:-build}"
RUNS_ARG="${2:---runs=400}"
OUT_DIR="experiment_results"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: '$BUILD_DIR/bench' not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
for bin in "$BUILD_DIR"/bench/*; do
  [ -x "$bin" ] || continue
  name=$(basename "$bin")
  echo "== $name"
  case "$name" in
    micro_des)
      "$bin" --benchmark_min_time=0.1s > "$OUT_DIR/$name.txt" 2>&1 ;;
    fig2*|table1*|eq8*|desh*|protocol*)
      "$bin" > "$OUT_DIR/$name.txt" 2>&1 ;;   # deterministic / cheap
    *)
      "$bin" "$RUNS_ARG" > "$OUT_DIR/$name.txt" 2>&1 ;;
  esac
done
echo "results written to $OUT_DIR/"
