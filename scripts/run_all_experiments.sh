#!/usr/bin/env sh
# Regenerate every paper table/figure (plus the ablations and extension
# experiments) into experiment_results/. Usage:
#   scripts/run_all_experiments.sh [build-dir] [--runs=N] [--jobs=N]
# Campaign binaries run through the parallel execution engine (--jobs,
# default: one worker per core) and additionally write machine-readable
# JSONL next to each .txt (schema: docs/EXECUTION.md).
set -eu

BUILD_DIR="${1:-build}"
RUNS_ARG="${2:---runs=400}"
JOBS_ARG="${3:---jobs=$(nproc 2>/dev/null || echo 1)}"
OUT_DIR="experiment_results"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: '$BUILD_DIR/bench' not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -G Ninja && cmake --build $BUILD_DIR" >&2
  exit 1
fi

mkdir -p "$OUT_DIR"
for bin in "$BUILD_DIR"/bench/*; do
  [ -x "$bin" ] || continue
  name=$(basename "$bin")
  echo "== $name"
  case "$name" in
    micro_des)
      # google-benchmark harness: no engine flags, no JSONL.
      "$bin" --benchmark_min_time=0.1s > "$OUT_DIR/$name.txt" 2>&1 ;;
    fig2*|table1*|eq8*|desh*|protocol*)
      # Deterministic / cheap table binaries: serial, but still JSONL.
      "$bin" --jsonl="$OUT_DIR/$name.jsonl" > "$OUT_DIR/$name.txt" 2>&1 ;;
    *)
      "$bin" "$RUNS_ARG" "$JOBS_ARG" --jsonl="$OUT_DIR/$name.jsonl" \
        > "$OUT_DIR/$name.txt" 2>&1 ;;
  esac
done
echo "results written to $OUT_DIR/"
