/// Eqs. 4-8 — the analytical LM-vs-p-ckpt model: the minimum LM-to-ckpt
/// transfer ratio alpha above which p-ckpt outperforms LM, as a function
/// of the LM-avoidable failure fraction sigma. The paper reports
/// 1.04 <= alpha < 1.30 over 0 <= sigma < 0.61.

#include <iostream>

#include "analysis/analytic_model.hpp"
#include "analysis/tables.hpp"
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;
  const auto opt = bench::parse_options(argc, argv);

  std::cout << "Eq. 8 — alpha threshold for p-ckpt to beat LM (even "
               "recomp/ckpt split)\n"
            << "sigma feasibility bound: sigma < "
            << analysis::sigma_upper_bound() << " (paper: 0.61)\n\n";

  analysis::Table t({"sigma", "alpha>= (paper Eq.8)", "alpha>= (derived)",
                     "beta at paper thr.", "LM ckpt reduction"});
  for (double s = 0.0; s < 0.615; s += 0.05) {
    const double a_paper = analysis::alpha_threshold_paper(s);
    t.add_row();
    t.cell(s, 2)
        .cell(a_paper, 3)
        .cell(s < 0.615 && std::sqrt(1.0 - s) > s
                  ? analysis::alpha_threshold_derived(s)
                  : 0.0,
              3)
        .cell(analysis::beta_fraction(std::max(1.0, a_paper), s), 3)
        .cell(analysis::lm_checkpoint_reduction_fraction(s), 3);
  }
  if (opt.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }

  std::cout << "\npredicate spot-checks (recomp/ckpt = 1):\n";
  analysis::Table p({"alpha", "sigma", "p-ckpt wins?"});
  const double cases[][2] = {{3.0, 0.3}, {1.1, 0.3}, {1.0, 0.3},
                             {2.0, 0.55}, {1.5, 0.1}};
  for (const auto& c : cases) {
    p.add_row();
    p.cell(c[0], 2).cell(c[1], 2).cell(
        analysis::pckpt_beats_lm(c[0], c[1]) ? "yes" : "no");
  }
  if (opt.csv) {
    p.print_csv(std::cout);
  } else {
    p.print(std::cout);
  }
  bench::write_tables_jsonl(opt, "eq8_analytic_model", {&t, &p});
  return 0;
}
