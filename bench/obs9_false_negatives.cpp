/// Observation 9 — impact of the predictor's false-negative rate: with the
/// false-positive rate fixed at 18%, the FN rate is swept up to 40%.
/// LM-assisted models (M2/P2) lose recomputation reductions faster than
/// the checkpoint-based models (M1/P1) because Eq. 2 overestimates the
/// avoidable failure fraction.

#include <iostream>
#include <vector>

#include "analysis/tables.hpp"
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;
  const auto opt = bench::parse_options(argc, argv);
  const bench::World world(opt.system);
  bench::Engine engine(opt, "obs9_false_negatives");
  const std::vector<double> fn_rates = {0.12, 0.20, 0.30, 0.40};
  const std::vector<const char*> apps = {"CHIMERA", "XGC", "POP"};

  std::cout << "Observation 9 — false-negative sweep (FP fixed at 18%); "
            << opt.runs << " paired runs, failure distribution: "
            << world.system->name << "\n"
            << "cells: recomputation-overhead reduction vs model B (%) and "
               "[FT ratio]\n\n";

  for (const char* app_name : apps) {
    const auto& app = workload::workload_by_name(app_name);
    const auto setup = world.setup(app);
    const auto base = engine.campaign(
        setup, bench::model(core::ModelKind::kB), app_name, "B");

    analysis::Table t({"FN rate", "M1 recompΔ", "M1 FT", "M2 recompΔ",
                       "M2 FT", "P1 recompΔ", "P1 FT", "P2 recompΔ",
                       "P2 FT"});
    for (double fn : fn_rates) {
      t.add_row();
      t.cell_percent(fn * 100.0, 0);
      for (auto kind : {core::ModelKind::kM1, core::ModelKind::kM2,
                        core::ModelKind::kP1, core::ModelKind::kP2}) {
        auto cfg = bench::model(kind);
        cfg.predictor.recall = 1.0 - fn;
        const auto r = engine.campaign(setup, cfg, app_name,
                                       core::to_string(kind),
                                       {{"fn_rate", fn}});
        t.cell_percent(
            core::percent_reduction(base.recomputation_s.mean(),
                                    r.recomputation_s.mean()),
            1);
        t.cell(r.pooled_ft_ratio(), 3);
      }
    }
    std::cout << "--- " << app.name << " ---\n";
    if (opt.csv) {
      t.print_csv(std::cout);
    } else {
      t.print(std::cout);
    }
    std::cout << '\n';
  }
  return 0;
}
