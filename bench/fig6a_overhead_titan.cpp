/// Fig. 6a — application overhead under B / M1 / M2 / P1 / P2 for all six
/// Summit workloads with OLCF Titan's Weibull failure distribution
/// (the paper's stand-in for Summit).

#include "bench/overhead_bars.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;
  auto opt = bench::parse_options(argc, argv);
  opt.system = "titan";
  bench::run_overhead_bars(opt, "Fig. 6a (Titan distribution)",
                           "fig6a_overhead_titan");
  return 0;
}
