/// Fig. 2b — single-compute-node aggregate I/O bandwidth vs transfer size
/// for 1..42 MPI tasks (synthetic GPFS model calibrated to the paper's
/// anchors: peak ~13.4 GB/s at 8 tasks).

#include <iostream>
#include <vector>

#include "analysis/tables.hpp"
#include "bench/bench_common.hpp"
#include "iomodel/summit_io.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;
  const auto opt = bench::parse_options(argc, argv);
  const iomodel::SummitIOConfig cfg;

  std::cout << "Fig. 2b — single-node aggregate write bandwidth (GB/s) by "
               "MPI task count and total transfer size\n\n";

  const std::vector<double> sizes_gb = {0.015625, 0.0625, 0.25, 1.0,
                                        4.0,      16.0,   64.0, 256.0};
  std::vector<std::string> headers = {"tasks"};
  for (double s : sizes_gb) {
    headers.push_back(s < 1.0 ? std::to_string(static_cast<int>(s * 1024)) + "MB"
                              : std::to_string(static_cast<int>(s)) + "GB");
  }
  analysis::Table t(headers);
  for (int tasks : {1, 2, 4, 8, 16, 24, 32, 42}) {
    t.add_row();
    t.cell(tasks);
    for (double s : sizes_gb) {
      t.cell(iomodel::node_bandwidth_for_tasks(tasks, s, cfg), 2);
    }
  }
  if (opt.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
  bench::write_tables_jsonl(opt, "fig2b_node_io", {&t});

  std::cout << "\npeak task count: " << cfg.peak_tasks
            << " (paper: 8 MPI tasks maximize a node's PFS bandwidth)\n";
  std::cout << "peak node bandwidth at 256 GB: "
            << iomodel::node_bandwidth_for_tasks(cfg.peak_tasks, 256.0, cfg)
            << " GB/s (paper: 13-13.5 GB/s)\n";
  return 0;
}
