#pragma once

/// \file ftratio_tables.hpp
/// Shared implementation of the FT-ratio tables (Tables II and IV):
/// fraction of failures successfully mitigated, per model, under lead-time
/// changes of {+50, +10, 0, -10, -50}%.

#include <iostream>
#include <string>
#include <vector>

#include "analysis/tables.hpp"
#include "bench/bench_common.hpp"

namespace pckpt::bench {

inline void run_ftratio_table(const Options& opt,
                              const std::vector<core::ModelKind>& kinds,
                              const char* table_name, const char* slug) {
  const World world(opt.system);
  Engine engine(opt, slug);
  const std::vector<const char*> apps = {"CHIMERA", "XGC", "POP"};
  const std::vector<double> deltas = {0.50, 0.10, 0.0, -0.10, -0.50};

  std::cout << table_name << " — FT ratio (mitigated / total failures); "
            << opt.runs << " paired runs per cell, failure distribution: "
            << world.system->name << "\n\n";

  std::vector<std::string> headers = {"leadΔ"};
  for (const char* a : apps) {
    for (auto k : kinds) {
      headers.push_back(std::string(a) + " " +
                        std::string(core::to_string(k)));
    }
  }
  analysis::Table t(headers);
  for (double d : deltas) {
    t.add_row();
    t.cell_percent(d * 100.0, 0);
    for (const char* app_name : apps) {
      const auto& app = workload::workload_by_name(app_name);
      for (auto k : kinds) {
        const auto r = engine.campaign(world.setup(app), model(k, 1.0 + d),
                                       app_name, core::to_string(k),
                                       {{"lead_scale", 1.0 + d}});
        t.cell(r.pooled_ft_ratio(), 3);
      }
    }
  }
  if (opt.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
}

}  // namespace pckpt::bench
