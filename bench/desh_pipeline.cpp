/// Sec. II pipeline — the full Desh-style loop in miniature: generate a
/// synthetic system log with injected failure chains and noise, detect
/// the chains, measure recall, fit a LeadTimeModel from the detections,
/// and compare the fitted lead-time statistics with the ground truth.

#include <iostream>
#include <map>

#include "analysis/tables.hpp"
#include "bench/bench_common.hpp"
#include "failure/log_analysis.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;
  const auto opt = bench::parse_options(argc, argv);

  failure::LogGenConfig cfg;
  cfg.seed = opt.seed;
  cfg.horizon_s = 14.0 * 24.0 * 3600.0;  // two weeks of logs
  cfg.nodes = 128;
  cfg.chains_per_hour = 3.0;
  cfg.noise_per_hour = 3600.0;  // one noise line per second

  const auto templates = failure::example_chain_templates();
  const auto log = failure::generate_log(templates, cfg);
  const auto found = failure::detect_chains(log.events, templates);

  std::cout << "Sec. II — log-based failure-chain analysis pipeline\n\n";
  std::cout << "log lines:        " << log.events.size() << "\n";
  std::cout << "injected chains:  " << log.truth.size() << "\n";
  std::cout << "detected chains:  " << found.size() << "\n";
  std::cout << "detection recall: "
            << static_cast<double>(found.size()) /
                   static_cast<double>(log.truth.size())
            << "\n\n";

  // Per-template lead-time statistics: truth vs detected vs fitted.
  std::map<int, std::vector<double>> truth_leads, det_leads;
  for (const auto& c : log.truth) truth_leads[c.template_id].push_back(c.lead_s());
  for (const auto& c : found) det_leads[c.template_id].push_back(c.lead_s());
  const auto fitted = failure::fit_lead_time_model(found, templates);

  analysis::Table t({"chain", "count(truth)", "count(det)", "median truth(s)",
                     "median det(s)", "fitted median(s)", "fitted sigma"});
  for (const auto& tmpl : templates) {
    t.add_row();
    const auto bt = stats::box_stats(truth_leads[tmpl.id]);
    const auto bd = stats::box_stats(det_leads[tmpl.id]);
    double fm = 0.0, fs = 0.0;
    for (const auto& s : fitted.sequences()) {
      if (s.id == tmpl.id) {
        fm = s.median_seconds;
        fs = s.sigma;
      }
    }
    t.cell(tmpl.id)
        .cell(static_cast<int>(truth_leads[tmpl.id].size()))
        .cell(static_cast<int>(det_leads[tmpl.id].size()))
        .cell(bt.median, 1)
        .cell(bd.median, 1)
        .cell(fm, 1)
        .cell(fs, 3);
  }
  if (opt.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }

  bench::write_tables_jsonl(opt, "desh_pipeline", {&t});
  std::cout << "\nfitted mixture mean lead: " << fitted.mean()
            << " s; P(lead > 20 s) = " << fitted.ccdf(20.0) << "\n";
  return 0;
}
