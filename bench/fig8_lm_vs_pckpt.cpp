/// Fig. 8 — which proactive mechanism dominates inside the hybrid model:
/// difference between LM-mitigated and p-ckpt-mitigated failure fractions
/// in model P2 over lead-time variation in (-90%, +90%), for all six
/// applications. Positive = LM dominates; negative = p-ckpt dominates.

#include <iostream>
#include <vector>

#include "analysis/tables.hpp"
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;
  const auto opt = bench::parse_options(argc, argv);
  const bench::World world(opt.system);
  bench::Engine engine(opt, "fig8_lm_vs_pckpt");
  const std::vector<double> deltas = {-0.90, -0.75, -0.60, -0.45, -0.30,
                                      -0.15, 0.0,   0.15,  0.30,  0.45,
                                      0.60,  0.75,  0.90};

  std::cout << "Fig. 8 — (FT_LM - FT_pckpt) x 100 within model P2 over "
               "lead-time variation; "
            << opt.runs << " paired runs, failure distribution: "
            << world.system->name << "\n"
            << "(positive: LM dominates; negative: p-ckpt dominates)\n\n";

  std::vector<std::string> headers = {"leadΔ"};
  for (const auto& app : workload::summit_workloads()) {
    headers.push_back(app.name);
  }
  analysis::Table t(headers);
  for (double d : deltas) {
    t.add_row();
    t.cell_percent(d * 100.0, 0);
    for (const auto& app : workload::summit_workloads()) {
      const auto r = engine.campaign(
          world.setup(app), bench::model(core::ModelKind::kP2, 1.0 + d),
          app.name, "P2", {{"lead_scale", 1.0 + d}});
      t.cell(100.0 * r.lm_minus_pckpt_ft(), 1);
    }
  }
  if (opt.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
  return 0;
}
