/// Table IV — FT ratio for CHIMERA / XGC / POP under models P1 and P2
/// across lead-time changes.

#include "bench/ftratio_tables.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;
  const auto opt = bench::parse_options(argc, argv);
  bench::run_ftratio_table(
      opt, {core::ModelKind::kP1, core::ModelKind::kP2}, "Table IV",
      "table4_ftratio_p1p2");
  return 0;
}
