/// Ablation study over the C/R model's engineering knobs (DESIGN.md):
///   (a) BB->PFS drain concurrency (the Spectral-style throttle),
///   (b) LM safety margin (how conservatively Fig. 5 chooses LM),
///   (c) restart cost.
/// Each sweep holds everything else at defaults on CHIMERA + Titan.

#include <iostream>

#include "analysis/tables.hpp"
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;
  const auto opt = bench::parse_options(argc, argv);
  const bench::World world(opt.system);
  bench::Engine engine(opt, "ablate_knobs");
  const auto& app = workload::workload_by_name("CHIMERA");
  const auto setup = world.setup(app);

  std::cout << "Ablations on CHIMERA (" << world.system->name << ", "
            << opt.runs << " paired runs)\n\n";

  // (a) Drain concurrency: too few drainers widen the Fig. 1(B) window
  // (restore points lag), too many is indistinguishable from unthrottled.
  std::cout << "(a) BB->PFS drain concurrency (model B):\n";
  analysis::Table a({"drainers", "recomp(h)", "recovery(h)", "total(h)"});
  for (int d : {4, 16, 64, 256, 2272}) {
    auto cfg = bench::model(core::ModelKind::kB);
    cfg.drain_concurrency = d;
    const auto r = engine.campaign(setup, cfg, app.name, "B",
                                   {{"drain_concurrency", double(d)}});
    a.add_row();
    a.cell(d).cell(r.recomputation_h(), 3).cell(r.recovery_h(), 3).cell(
        r.total_overhead_h(), 3);
  }
  a.print(std::cout);

  // (b) LM safety margin under P2: a bigger margin pushes borderline
  // predictions from LM to p-ckpt.
  std::cout << "\n(b) LM safety margin (model P2):\n";
  analysis::Table b({"margin", "FT", "FT via LM", "FT via p-ckpt",
                     "total(h)"});
  for (double m : {1.0, 1.25, 1.5, 2.0}) {
    auto cfg = bench::model(core::ModelKind::kP2);
    cfg.lm_safety_margin = m;
    const auto r = engine.campaign(setup, cfg, app.name, "P2",
                                   {{"lm_safety_margin", m}});
    b.add_row();
    b.cell(m, 2)
        .cell(r.pooled_ft_ratio(), 3)
        .cell(r.failures > 0 ? r.mitigated_lm / r.failures : 0.0, 3)
        .cell(r.failures > 0 ? r.mitigated_ckpt / r.failures : 0.0, 3)
        .cell(r.total_overhead_h(), 3);
  }
  b.print(std::cout);

  // (c) Restart cost: recovery-dominated models feel it most.
  std::cout << "\n(c) restart cost (model P1):\n";
  analysis::Table c({"restart(s)", "recovery(h)", "total(h)"});
  for (double s : {0.0, 30.0, 120.0, 600.0}) {
    auto cfg = bench::model(core::ModelKind::kP1);
    cfg.restart_seconds = s;
    const auto r = engine.campaign(setup, cfg, app.name, "P1",
                                   {{"restart_seconds", s}});
    c.add_row();
    c.cell(s, 0).cell(r.recovery_h(), 3).cell(r.total_overhead_h(), 3);
  }
  c.print(std::cout);
  return 0;
}
