#pragma once

/// \file overhead_bars.hpp
/// Shared implementation of the Fig. 6a/6b overhead-breakdown bars: for
/// every application, every model's overhead split (checkpoint /
/// recomputation / recovery / migration) as a percentage of model B's
/// total, with absolute hours annotated — exactly the information in the
/// paper's stacked bars.

#include <iostream>
#include <string>

#include "analysis/tables.hpp"
#include "bench/bench_common.hpp"

namespace pckpt::bench {

inline void run_overhead_bars(const Options& opt, const char* figure_name,
                              const char* slug, bool append_jsonl = false) {
  const World world(opt.system);
  Engine engine(opt, slug, append_jsonl);

  std::cout << figure_name
            << " — fault-tolerance overhead normalized to model B; "
            << opt.runs << " paired runs, failure distribution: "
            << world.system->name << "\n\n";

  analysis::Table t({"application", "model", "ckpt%", "recomp%", "recov%",
                     "migr%", "total%", "total(h)", "FT", "fails/run"});
  analysis::Table summary({"application", "P1 reduction", "P2 reduction",
                           "M2 reduction", "M1 reduction"});

  for (const auto& app : workload::summit_workloads()) {
    const auto res =
        engine.comparison(world.setup(app), five_models(), app.name);
    const double base = res[0].total_overhead_s.mean();
    for (const auto& r : res) {
      t.add_row();
      t.cell(app.name)
          .cell(std::string(core::to_string(r.kind)))
          .cell_percent(100.0 * r.checkpoint_s.mean() / base, 1)
          .cell_percent(100.0 * r.recomputation_s.mean() / base, 1)
          .cell_percent(100.0 * r.recovery_s.mean() / base, 1)
          .cell_percent(100.0 * r.migration_s.mean() / base, 1)
          .cell_percent(100.0 * r.total_overhead_s.mean() / base, 1)
          .cell(r.total_overhead_h(), 2)
          .cell(r.pooled_ft_ratio(), 3)
          .cell(r.failures_per_run(), 2);
    }
    summary.add_row();
    summary.cell(app.name);
    for (std::size_t idx : {3u, 4u, 2u, 1u}) {  // P1, P2, M2, M1
      summary.cell_percent(
          core::percent_reduction(base, res[idx].total_overhead_s.mean()),
          1);
    }
  }

  if (opt.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
  std::cout << "\nObservation-2-style summary (total-overhead reduction vs "
               "B):\n";
  if (opt.csv) {
    summary.print_csv(std::cout);
  } else {
    summary.print(std::cout);
  }
}

}  // namespace pckpt::bench
