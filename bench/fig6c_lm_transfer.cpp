/// Fig. 6c — impact of the LM transfer size on the LM-vs-p-ckpt
/// comparison: models B, P1 and M2-alpha (alpha = LM transfer volume as a
/// multiple of the checkpoint size) for CHIMERA, XGC and POP.
/// Observation 8: the larger the checkpoint, the larger p-ckpt's edge; P1
/// beats M2 on CHIMERA until alpha ~ 1 and on XGC until alpha ~ 2.5.

#include <iostream>
#include <string>
#include <vector>

#include "analysis/tables.hpp"
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;
  const auto opt = bench::parse_options(argc, argv);
  const bench::World world(opt.system);
  bench::Engine engine(opt, "fig6c_lm_transfer");
  const std::vector<const char*> apps = {"CHIMERA", "XGC", "POP"};
  const std::vector<double> alphas = {1.0, 1.5, 2.0, 2.5, 3.0, 4.0};

  std::cout << "Fig. 6c — LM transfer-size sensitivity (M2-alpha vs P1); "
            << opt.runs << " paired runs, failure distribution: "
            << world.system->name << "\n\n";

  analysis::Table t({"application", "model", "ckpt%", "recomp%", "recov%",
                     "total%", "total(h)", "FT"});
  for (const char* app_name : apps) {
    const auto& app = workload::workload_by_name(app_name);
    const auto setup = world.setup(app);
    const auto base = engine.campaign(
        setup, bench::model(core::ModelKind::kB), app_name, "B");
    const double b = base.total_overhead_s.mean();
    auto emit = [&](const std::string& label, const core::CampaignResult& r) {
      t.add_row();
      t.cell(app.name)
          .cell(label)
          .cell_percent(100.0 * r.checkpoint_s.mean() / b, 1)
          .cell_percent(100.0 * r.recomputation_s.mean() / b, 1)
          .cell_percent(100.0 * r.recovery_s.mean() / b, 1)
          .cell_percent(100.0 * r.total_overhead_s.mean() / b, 1)
          .cell(r.total_overhead_h(), 2)
          .cell(r.pooled_ft_ratio(), 3);
    };
    emit("B", base);
    emit("P1", engine.campaign(setup, bench::model(core::ModelKind::kP1),
                               app_name, "P1"));
    for (double alpha : alphas) {
      auto cfg = bench::model(core::ModelKind::kM2);
      cfg.lm_transfer_factor = alpha;
      std::string label = "M2-" + std::to_string(alpha);
      label.resize(label.find('.') + 2);  // one decimal
      emit(label, engine.campaign(setup, cfg, app_name, label,
                                  {{"lm_transfer_factor", alpha}}));
    }
  }
  if (opt.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
  return 0;
}
