/// Extension experiment — finite replacement-node pool. The paper assumes
/// "reserved nodes are always available to the resource manager"; this
/// sweep relaxes that assumption on a failure-heavy configuration
/// (CHIMERA under the LANL System 18 distribution, ~3.3 h job MTBF) and
/// shows when the assumption starts to matter: recovery stalls waiting
/// for repairs, and LM loses migration targets.

#include <iostream>
#include <vector>

#include "analysis/tables.hpp"
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;
  auto opt = bench::parse_options(argc, argv);
  opt.system = "lanl18";
  const bench::World world(opt.system);
  bench::Engine engine(opt, "ext_spare_pool");
  const auto& app = workload::workload_by_name("CHIMERA");
  const auto setup = world.setup(app);

  std::cout << "Extension — replacement-node pool size (CHIMERA, LANL "
               "System 18 distribution, repair time 2 h); "
            << opt.runs << " paired runs\n\n";

  analysis::Table t({"spares", "model", "recovery(h)", "total(h)", "FT",
                     "FT via LM", "makespan(h)"});
  const std::vector<int> pools = {-1, 8, 2, 1, 0};
  for (int spares : pools) {
    for (auto kind : {core::ModelKind::kB, core::ModelKind::kP2}) {
      auto cfg = bench::model(kind);
      cfg.spare_nodes = spares;
      cfg.node_repair_hours = 2.0;
      const auto r = engine.campaign(
          setup, cfg, app.name, core::to_string(kind),
          {{"spares", static_cast<double>(spares)}});
      t.add_row();
      t.cell(spares < 0 ? std::string("inf") : std::to_string(spares))
          .cell(std::string(core::to_string(kind)))
          .cell(r.recovery_h(), 2)
          .cell(r.total_overhead_h(), 2)
          .cell(r.pooled_ft_ratio(), 3)
          .cell(r.failures > 0 ? r.mitigated_lm / r.failures : 0.0, 3)
          .cell(r.makespan_s.mean() / 3600.0, 1);
    }
  }
  if (opt.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
  std::cout << "\n(spares = inf reproduces the paper's assumption; the gap "
               "below quantifies how much that assumption is worth.)\n";
  return 0;
}
