/// Fig. 2a — failure prediction lead-time distribution.
///
/// Prints the box-plot statistics (min / Q1 / median / Q3 / max, mean,
/// whiskers, outlier count) of each failure sequence in the lead-time
/// mixture model, mirroring the paper's ten box plots, plus the mixture
/// CCDF at the thresholds that drive the C/R models.

#include <iostream>
#include <vector>

#include "analysis/tables.hpp"
#include "bench/bench_common.hpp"
#include "random/rng.hpp"
#include "stats/summary.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;
  const auto opt = bench::parse_options(argc, argv);
  const auto leads = failure::LeadTimeModel::summit_default();

  const std::size_t samples_per_seq = 2000 * std::max<std::size_t>(1, opt.runs / 200);

  std::cout << "Fig. 2a — lead-time distribution per failure sequence "
               "(synthetic stand-in for the Desh log analysis)\n\n";

  analysis::Table t({"seq", "description", "weight", "mean(s)", "min", "q1",
                     "median", "q3", "max", "outliers"});
  rnd::Xoshiro256 rng(opt.seed);
  for (const auto& seq : leads.sequences()) {
    // Sample each sequence in isolation for its box stats.
    failure::LeadTimeModel solo({seq});
    std::vector<double> xs;
    xs.reserve(samples_per_seq);
    for (std::size_t i = 0; i < samples_per_seq; ++i) {
      xs.push_back(solo.sample(rng).lead_seconds);
    }
    const auto b = stats::box_stats(std::move(xs));
    t.add_row();
    t.cell(seq.id)
        .cell(seq.description)
        .cell(seq.weight, 1)
        .cell(b.mean, 1)
        .cell(b.min, 1)
        .cell(b.q1, 1)
        .cell(b.median, 1)
        .cell(b.q3, 1)
        .cell(b.max, 1)
        .cell(static_cast<int>(b.outliers));
  }
  if (opt.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }

  std::cout << "\nmixture mean lead time: " << leads.mean() << " s\n";
  std::cout << "\nCCDF anchors (P[lead > t]):\n";
  analysis::Table c({"threshold(s)", "what it gates", "P[lead > t]"});
  struct Anchor {
    double t;
    const char* what;
  };
  const Anchor anchors[] = {
      {7.4, "XGC p-ckpt phase-1 write"},
      {21.2, "CHIMERA p-ckpt phase-1 write"},
      {23.7, "XGC LM transfer (3x)"},
      {40.96, "CHIMERA LM transfer (RAM-capped)"},
      {107.0, "XGC full safeguard write"},
      {452.0, "CHIMERA full safeguard write"},
  };
  for (const auto& a : anchors) {
    c.add_row();
    c.cell(a.t, 1).cell(a.what).cell(leads.ccdf(a.t), 3);
  }
  if (opt.csv) {
    c.print_csv(std::cout);
  } else {
    c.print(std::cout);
  }
  bench::write_tables_jsonl(opt, "fig2a_lead_times", {&t, &c});
  return 0;
}
