/// Extension experiment — lead-time *estimation* accuracy. The paper
/// varies actual lead times (Figs. 4/7) and the false-negative rate
/// (Obs. 9) and names prediction-accuracy-aware intervals as future work;
/// this experiment quantifies the missing axis: the decision logic
/// receives a noisy estimate of the lead (lognormal multiplicative error)
/// while failures keep their true timing. Misrouted decisions hurt the
/// LM-assisted models most — the same asymmetry as Observation 9.

#include <iostream>
#include <vector>

#include "analysis/tables.hpp"
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;
  const auto opt = bench::parse_options(argc, argv);
  const bench::World world(opt.system);
  bench::Engine engine(opt, "ext_lead_noise");
  const std::vector<double> sigmas = {0.0, 0.25, 0.5, 1.0};
  const std::vector<const char*> apps = {"CHIMERA", "XGC", "POP"};

  std::cout << "Extension — lead-estimation noise (lognormal sigma on the "
               "predicted lead); "
            << opt.runs << " paired runs, failure distribution: "
            << world.system->name << "\n\n";

  for (const char* app_name : apps) {
    const auto& app = workload::workload_by_name(app_name);
    const auto setup = world.setup(app);
    const auto base = engine.campaign(
        setup, bench::model(core::ModelKind::kB), app_name, "B");

    analysis::Table t({"sigma", "M2 FT", "M2 total%", "P1 FT", "P1 total%",
                       "P2 FT", "P2 total%"});
    for (double s : sigmas) {
      t.add_row();
      t.cell(s, 2);
      for (auto kind : {core::ModelKind::kM2, core::ModelKind::kP1,
                        core::ModelKind::kP2}) {
        auto cfg = bench::model(kind);
        cfg.predictor.lead_error_sigma = s;
        const auto r = engine.campaign(setup, cfg, app_name,
                                       core::to_string(kind),
                                       {{"lead_error_sigma", s}});
        t.cell(r.pooled_ft_ratio(), 3);
        t.cell_percent(100.0 * r.total_overhead_s.mean() /
                           base.total_overhead_s.mean(),
                       1);
      }
    }
    std::cout << "--- " << app.name << " ---\n";
    if (opt.csv) {
      t.print_csv(std::cout);
    } else {
      t.print(std::cout);
    }
    std::cout << '\n';
  }
  return 0;
}
