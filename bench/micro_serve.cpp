/// micro_serve — latency harness for the serving layer (docs/SERVING.md):
/// the three paths a pckpt_serve daemon answers from, measured at the
/// planner/store boundary (no socket, so the numbers isolate cache and
/// planner cost from kernel scheduling noise):
///
///   hit.us            memoized lookup + payload copy (telemetry off)
///   estimate_miss.us  tier-A closed-form answer + durable append
///   exact_miss.ms     tier-B campaign (the --runs knob sizes it)
///   reopen.ms         recovery-on-open scan of the populated log
///   hit_telemetry.us  the same hit path with the daemon's full span +
///                     histogram machinery attached (runtime telemetry,
///                     docs/OBSERVABILITY.md)
///   dedup.ms          N identical concurrent exact misses coalescing
///                     onto one in-flight campaign (dedup.hits pins the
///                     N-1 coalesce count)
///   fair_spread.ratio small-campaign latency next to a big campaign on
///                     the shared fair-share pool, relative to running
///                     alone (round-robin keeps it bounded; FIFO would
///                     push it toward big/small)
///
/// The hit / hit_telemetry pair is the runtime-telemetry A/B: `hit.us`
/// pins the disabled path (one null test, no clock reads) and
/// `telemetry_overhead.ratio` pins the enabled path's relative cost.
/// Emits pckpt-bench/1 telemetry via --bench-json; hard-gated against
/// the committed baseline in CI (see .github/workflows/ci.yml).

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/scenario.hpp"
#include "exec/fair_share.hpp"
#include "failure/system_catalog.hpp"
#include "obs/request_span.hpp"
#include "obs/runtime_log.hpp"
#include "serve/planner.hpp"
#include "serve/result_store.hpp"
#include "serve/telemetry.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

pckpt::core::Scenario scenario_for(const std::string& system_name) {
  pckpt::core::Scenario s;
  s.machine = pckpt::workload::summit();
  s.applications = pckpt::workload::summit_workloads();
  s.system = pckpt::failure::system_by_name(system_name);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pckpt;
  auto opt = bench::parse_options(argc, argv, /*with_repeat=*/true);
  if (opt.runs == 200) opt.runs = 32;  // default: a small tier-B campaign
  const std::size_t samples = opt.repeat > 0 ? opt.repeat : 1;

  const std::string store_path =
      "/tmp/pckpt_micro_serve_" + std::to_string(::getpid());
  ::unlink(store_path.c_str());
  ::unlink((store_path + ".journal").c_str());

  bench::BenchTelemetry telemetry(opt, "micro_serve", /*resolved_jobs=*/1);

  std::printf("micro_serve — serving-layer latencies (%zu sample(s), "
              "tier-B campaign of %zu trials)\n\n",
              samples, opt.runs);

  auto store = std::make_unique<serve::ResultStore>(store_path);
  serve::Planner planner(scenario_for(opt.system), serve::AdmissionConfig{},
                         *store);

  // Telemetry-on twin: a second planner on its own store, wired exactly
  // like a production daemon (Telemetry attached, per-request spans,
  // record_request folding into the latency histograms). Log level
  // error keeps the bench quiet — request.done records are debug, so
  // the measured cost is spans + histograms, not I/O.
  const std::string store_tel_path = store_path + "_tel";
  ::unlink(store_tel_path.c_str());
  ::unlink((store_tel_path + ".journal").c_str());
  auto store_tel = std::make_unique<serve::ResultStore>(store_tel_path);
  obs::RuntimeLog tel_log(obs::LogLevel::kError);
  serve::Telemetry telem(tel_log);
  serve::Planner planner_tel(scenario_for(opt.system),
                             serve::AdmissionConfig{}, *store_tel);
  planner_tel.set_telemetry(&telem);

  serve::QuerySpec spec;
  spec.model = "P2";
  spec.app = "VULCAN";

  std::vector<double> hit_us, hit_tel_us, overhead, est_us, exact_ms,
      reopen_ms;
  std::size_t fresh = 0;  // monotone counter keeping miss keys unique
  for (std::size_t s = 0; s < samples + 1; ++s) {
    const bool warmup = s == 0;

    // Tier-A misses: each query perturbs one policy knob by an exact
    // power-of-two step, so every iteration is a distinct cache key.
    constexpr std::size_t kMisses = 64;
    const double t_est = wall_seconds([&] {
      for (std::size_t i = 0; i < kMisses; ++i) {
        serve::QuerySpec q = spec;
        q.lead_scale = 1.0 + static_cast<double>(++fresh) * 0x1p-20;
        (void)planner.answer(q);
      }
    });

    // Hits: the first answer above is cached; re-ask it.
    serve::QuerySpec q_hit = spec;
    q_hit.lead_scale = 1.0 + 0x1p-20;
    constexpr std::size_t kHits = 512;
    const double t_hit = wall_seconds([&] {
      for (std::size_t i = 0; i < kHits; ++i) (void)planner.answer(q_hit);
    });

    // The same hit stream through the telemetry-on twin, span per
    // request as in Server::handle_line.
    (void)planner_tel.answer(q_hit);  // warm its cache
    const double t_hit_tel = wall_seconds([&] {
      for (std::size_t i = 0; i < kHits; ++i) {
        pckpt::obs::RequestSpan span(telem.next_request_id());
        (void)planner_tel.answer(q_hit, {}, &span);
        telem.record_request(span, "query", 200);
      }
    });

    // Tier-B miss: one full campaign, unique seed per iteration.
    serve::QuerySpec q_exact = spec;
    q_exact.mode = "exact";
    q_exact.runs = static_cast<std::uint64_t>(opt.runs);
    q_exact.seed = opt.seed + s;
    const double t_exact =
        wall_seconds([&] { (void)planner.answer(q_exact); });

    // Recovery-on-open over everything written so far.
    double t_open = 0.0;
    std::unique_ptr<serve::ResultStore> reopened;
    t_open = wall_seconds(
        [&] { reopened = std::make_unique<serve::ResultStore>(store_path); });
    const std::size_t records = reopened->stats().records;
    reopened.reset();

    if (warmup) continue;
    est_us.push_back(t_est / kMisses * 1e6);
    hit_us.push_back(t_hit / kHits * 1e6);
    hit_tel_us.push_back(t_hit_tel / kHits * 1e6);
    overhead.push_back(t_hit_tel / t_hit);
    exact_ms.push_back(t_exact * 1e3);
    reopen_ms.push_back(t_open * 1e3);
    std::printf("sample %zu: hit %.2f us (telemetry-on %.2f us, %.3fx), "
                "estimate-miss %.2f us, exact-miss %.2f ms, "
                "reopen(%zu recs) %.3f ms\n",
                s, hit_us.back(), hit_tel_us.back(), overhead.back(),
                est_us.back(), exact_ms.back(), records, reopen_ms.back());
  }

  // -------------------------------------------------------------------
  // Concurrency: dedup coalescing and fair-share latency spread, on a
  // planner wired like a scaled-out daemon (shared pool, admission wide
  // enough for two concurrent campaigns).
  // -------------------------------------------------------------------
  const std::string store_pool_path = store_path + "_pool";
  ::unlink(store_pool_path.c_str());
  ::unlink((store_pool_path + ".journal").c_str());
  auto store_pool = std::make_unique<serve::ResultStore>(store_pool_path);
  exec::FairShareScheduler scheduler(2);
  serve::Planner planner_pool(
      scenario_for(opt.system),
      serve::AdmissionConfig{/*max_inflight=*/4, /*queue_limit=*/8,
                             /*wait_ms=*/30000},
      *store_pool, /*checkpoint_dir=*/"", &scheduler);

  // Spin until the planner holds an admission ticket: the leader is in
  // the dedup map (inserted before admission), so queries issued past
  // this point coalesce instead of racing the insert.
  const auto wait_inflight = [&] {
    while (planner_pool.counters().inflight == 0) std::this_thread::yield();
  };

  std::vector<double> dedup_ms, spread_ratio;
  for (std::size_t s = 0; s < samples + 1; ++s) {
    const bool warmup = s == 0;

    // Dedup: one leader, three followers on the identical fresh key.
    constexpr std::size_t kFollowers = 3;
    serve::QuerySpec q_dd = spec;
    q_dd.mode = "exact";
    q_dd.runs = static_cast<std::uint64_t>(opt.runs);
    q_dd.seed = opt.seed + 1000 + s;
    const double t_dedup = wall_seconds([&] {
      std::thread leader([&] { (void)planner_pool.answer(q_dd); });
      wait_inflight();
      std::vector<std::thread> followers;
      for (std::size_t k = 0; k < kFollowers; ++k) {
        followers.emplace_back([&] { (void)planner_pool.answer(q_dd); });
      }
      leader.join();
      for (auto& t : followers) t.join();
    });

    // Fair spread: a small campaign alone on the pool, then the same
    // size campaign while a big one occupies it.
    serve::QuerySpec q_small = spec;
    q_small.mode = "exact";
    q_small.runs = 16;
    q_small.seed = opt.seed + 2000 + s;
    const double t_small_solo =
        wall_seconds([&] { (void)planner_pool.answer(q_small); });

    serve::QuerySpec q_big = spec;
    q_big.mode = "exact";
    q_big.runs = 128;
    q_big.seed = opt.seed + 3000 + s;
    std::thread big([&] { (void)planner_pool.answer(q_big); });
    wait_inflight();
    q_small.seed = opt.seed + 4000 + s;
    const double t_small_shared =
        wall_seconds([&] { (void)planner_pool.answer(q_small); });
    big.join();

    if (warmup) continue;
    dedup_ms.push_back(t_dedup * 1e3);
    spread_ratio.push_back(t_small_shared / t_small_solo);
    std::printf("sample %zu: dedup(4x) %.2f ms, small solo %.2f ms / "
                "shared %.2f ms (spread %.3fx)\n",
                s, dedup_ms.back(), t_small_solo * 1e3,
                t_small_shared * 1e3, spread_ratio.back());
  }
  const double dedup_hits_per_sample =
      static_cast<double>(planner_pool.counters().dedup_hits) /
      static_cast<double>(samples + 1);

  const auto hit = bench::summarize_repeats(hit_us);
  const auto hit_tel = bench::summarize_repeats(hit_tel_us);
  const auto over = bench::summarize_repeats(overhead);
  const auto est = bench::summarize_repeats(est_us);
  const auto exact = bench::summarize_repeats(exact_ms);
  const auto reopen = bench::summarize_repeats(reopen_ms);
  const auto dedup = bench::summarize_repeats(dedup_ms);
  const auto spread = bench::summarize_repeats(spread_ratio);
  std::printf("\nmedians: hit %.2f us (telemetry-on %.2f us, %.3fx), "
              "estimate-miss %.2f us, exact-miss %.2f ms, reopen %.3f ms, "
              "dedup %.2f ms (%.2f hits/sample), fair-spread %.3fx\n",
              hit.median, hit_tel.median, over.median, est.median,
              exact.median, reopen.median, dedup.median,
              dedup_hits_per_sample, spread.median);

  telemetry.add_metric("hit.us.median", hit.median);
  telemetry.add_metric("hit.us.min", hit.min);
  telemetry.add_metric("hit.us.stddev", hit.stddev);
  telemetry.add_metric("hit_telemetry.us.median", hit_tel.median);
  telemetry.add_metric("hit_telemetry.us.min", hit_tel.min);
  telemetry.add_metric("hit_telemetry.us.stddev", hit_tel.stddev);
  telemetry.add_metric("telemetry_overhead.ratio", over.median);
  telemetry.add_metric("estimate_miss.us.median", est.median);
  telemetry.add_metric("estimate_miss.us.min", est.min);
  telemetry.add_metric("estimate_miss.us.stddev", est.stddev);
  telemetry.add_metric("exact_miss.ms.median", exact.median);
  telemetry.add_metric("exact_miss.ms.min", exact.min);
  telemetry.add_metric("exact_miss.ms.stddev", exact.stddev);
  telemetry.add_metric("reopen.ms.median", reopen.median);
  telemetry.add_metric("reopen.ms.min", reopen.min);
  telemetry.add_metric("reopen.ms.stddev", reopen.stddev);
  telemetry.add_metric("dedup.ms.median", dedup.median);
  telemetry.add_metric("dedup.ms.min", dedup.min);
  telemetry.add_metric("dedup.ms.stddev", dedup.stddev);
  telemetry.add_metric("dedup.hits", dedup_hits_per_sample);
  telemetry.add_metric("fair_spread.ratio", spread.median);
  telemetry.finish();

  store.reset();
  store_tel.reset();
  store_pool.reset();
  ::unlink(store_path.c_str());
  ::unlink((store_path + ".journal").c_str());
  ::unlink(store_tel_path.c_str());
  ::unlink((store_tel_path + ".journal").c_str());
  ::unlink(store_pool_path.c_str());
  ::unlink((store_pool_path + ".journal").c_str());
  return 0;
}
