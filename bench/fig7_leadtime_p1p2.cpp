/// Fig. 7 — impact of lead-time variability on the contributed models:
/// P1 (p-ckpt) and P2 (hybrid p-ckpt), for CHIMERA, XGC and POP, relative
/// to the base model B.

#include "bench/leadtime_sweep.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;
  const auto opt = bench::parse_options(argc, argv);
  bench::run_leadtime_sweep(
      opt, {core::ModelKind::kP1, core::ModelKind::kP2}, "Fig. 7",
      "fig7_leadtime_p1p2");
  return 0;
}
