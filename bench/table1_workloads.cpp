/// Table I — HPC workload characteristics, plus the derived per-model
/// quantities the simulation uses (BB checkpoint time, LM latency theta,
/// p-ckpt phase-1 write, full safeguard write, job MTBF).

#include <iostream>

#include "analysis/tables.hpp"
#include "bench/bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;
  const auto opt = bench::parse_options(argc, argv);
  const bench::World world(opt.system);

  std::cout << "Table I — workload characteristics on Summit (and derived "
               "quantities; failure distribution: "
            << world.system->name << ")\n\n";

  analysis::Table t({"application", "nodes", "ckpt(GB)", "compute(h)",
                     "GB/node", "t_bb(s)", "theta_LM(s)", "pckpt ph1(s)",
                     "safeguard(s)", "job MTBF(h)"});
  for (const auto& app : workload::summit_workloads()) {
    t.add_row();
    t.cell(app.name)
        .cell(app.nodes)
        .cell(app.ckpt_total_gb, 1)
        .cell(app.compute_hours, 0)
        .cell(app.ckpt_per_node_gb(), 2)
        .cell(world.storage.bb_write_seconds(app.ckpt_per_node_gb()), 1)
        .cell(core::lm_theta_seconds(app, world.machine, world.storage, 3.0),
              2)
        .cell(world.storage.pfs_single_node_seconds(app.ckpt_per_node_gb()),
              2)
        .cell(world.storage.pfs_aggregate_seconds(app.nodes,
                                                  app.ckpt_per_node_gb()),
              1)
        .cell(world.system->job_mtbf_hours(app.nodes), 1);
  }
  if (opt.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }

  bench::write_tables_jsonl(opt, "table1_workloads", {&t});
  std::cout << "\nEq. 3 example: VULCAN's 0.75 GB checkpoint on a "
               "1024-node/16GB-DRAM machine scales to "
            << workload::scale_checkpoint_gb(0.75, 1024, 16.0, 64, 512.0)
            << " GB on 64 Summit nodes.\n";
  return 0;
}
