/// Table II — FT ratio for CHIMERA / XGC / POP under models M1 and M2
/// across lead-time changes.

#include "bench/ftratio_tables.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;
  const auto opt = bench::parse_options(argc, argv);
  bench::run_ftratio_table(
      opt, {core::ModelKind::kM1, core::ModelKind::kM2}, "Table II",
      "table2_ftratio_m1m2");
  return 0;
}
