/// Fig. 6b (and the LANL System 8 result described in Observation 7) —
/// the Fig. 6a experiment repeated under the other two Table III failure
/// distributions, demonstrating robustness of the overhead reductions.

#include "bench/overhead_bars.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;
  auto opt = bench::parse_options(argc, argv);
  opt.system = "lanl18";
  bench::run_overhead_bars(opt, "Fig. 6b (LANL System 18 distribution)",
                           "fig6b_overhead_lanl");
  std::cout << "\n";
  opt.system = "lanl8";
  bench::run_overhead_bars(opt, "Observation 7 (LANL System 8 distribution)",
                           "fig6b_overhead_lanl", /*append_jsonl=*/true);
  return 0;
}
