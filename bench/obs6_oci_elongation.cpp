/// Observation 6 — the sigma-extended OCI (Eq. 2) elongates the checkpoint
/// interval by ~54-340% over Young's interval (Eq. 1); the longer interval
/// trades extra recomputation (P2 vs P1) for reduced checkpoint overhead.

#include <iostream>

#include "analysis/tables.hpp"
#include "bench/bench_common.hpp"
#include "core/oci.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;
  const auto opt = bench::parse_options(argc, argv);
  const bench::World world(opt.system);
  bench::Engine engine(opt, "obs6_oci_elongation");

  std::cout << "Observation 6 — OCI elongation (Eq. 2 vs Eq. 1) and its "
               "recomputation cost (P2 vs P1); "
            << opt.runs << " paired runs, failure distribution: "
            << world.system->name << "\n\n";

  analysis::Table t({"application", "sigma", "OCI eq1(h)", "OCI eq2(h)",
                     "elongation", "P1 recomp(h)", "P2 recomp(h)",
                     "P2/P1 recomp", "P1 ckpt(h)", "P2 ckpt(h)"});
  for (const auto& app : workload::summit_workloads()) {
    const double theta =
        core::lm_theta_seconds(app, world.machine, world.storage, 3.0);
    failure::PredictorConfig pred;  // defaults
    const double sigma = core::estimate_sigma(world.leads, pred, theta, 1.0);
    const double t_bb = world.storage.bb_write_seconds(app.ckpt_per_node_gb());
    const double rate = world.system->job_rate_per_second(app.nodes);
    const double oci1 = core::young_oci_seconds(t_bb, rate);
    const double oci2 = core::sigma_extended_oci_seconds(t_bb, rate, sigma);

    const auto p1 = engine.campaign(
        world.setup(app), bench::model(core::ModelKind::kP1), app.name, "P1",
        {{"sigma", sigma}});
    const auto p2 = engine.campaign(
        world.setup(app), bench::model(core::ModelKind::kP2), app.name, "P2",
        {{"sigma", sigma}});

    t.add_row();
    t.cell(app.name)
        .cell(sigma, 3)
        .cell(oci1 / 3600.0, 3)
        .cell(oci2 / 3600.0, 3)
        .cell_percent(100.0 * (oci2 / oci1 - 1.0), 0)
        .cell(p1.recomputation_h(), 3)
        .cell(p2.recomputation_h(), 3)
        .cell(p2.recomputation_s.mean() /
                  std::max(1e-9, p1.recomputation_s.mean()),
              2)
        .cell(p1.checkpoint_h(), 3)
        .cell(p2.checkpoint_h(), 3);
  }
  if (opt.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }
  return 0;
}
