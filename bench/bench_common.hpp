#pragma once

/// \file bench_common.hpp
/// Shared scaffolding for the experiment binaries: argument parsing, the
/// Summit world (machine + storage + lead-time model), the standard
/// five-model configuration set, and the `Engine` that runs every
/// campaign through the exec subsystem (thread pool + JSONL sink).

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <initializer_list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "analysis/tables.hpp"
#include "obs/cli_flags.hpp"
#include "core/campaign.hpp"
#include "core/cr_config.hpp"
#include "core/simulation.hpp"
#include "exec/result_sink.hpp"
#include "exec/thread_pool.hpp"
#include "obs/bench_json.hpp"
#include "obs/collector.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_writer.hpp"
#include "failure/lead_time_model.hpp"
#include "failure/system_catalog.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace pckpt::bench {

struct Options {
  std::size_t runs = 200;
  std::uint64_t seed = 2022;
  std::size_t jobs = 0;  ///< 0 = auto (hardware concurrency)
  std::string system = "titan";
  std::string jsonl;  ///< JSONL output path; empty = stdout tables only
  bool csv = false;
  std::string trace;  ///< semantic trace output path; empty = tracing off
  obs::TraceFormat trace_format = obs::TraceFormat::kJsonl;
  std::string bench_json;  ///< BENCH_*.json output path; empty = off
  bool profile = false;    ///< print the host-time attribution table
  std::size_t repeat = 0;  ///< warmup+repeat samples; 0 = single sample
};

/// Strictly-decimal unsigned integer parse (via the shared strict CLI
/// helper, src/obs/cli_flags.hpp). `strtoul` alone silently accepts
/// "12abc" and wraps "-1", both of which have burned campaign hours
/// before.
inline std::uint64_t parse_u64_flag(const char* flag, const char* text) {
  return obs::cli_u64("bench", flag, text);
}

/// The common flag block every experiment binary accepts. `with_repeat`
/// additionally enables `--repeat=N` (micro benches only); every other
/// binary keeps rejecting it so the flag surface stays strict. Parsing
/// and validation live in src/obs/cli_flags.{hpp,cpp}, shared with
/// pckpt_sim and the serve tools.
inline Options parse_options(int argc, char** argv, bool with_repeat = false) {
  unsigned mask = obs::kCliRuns | obs::kCliSeed | obs::kCliJobs |
                  obs::kCliJsonl | obs::kCliCsv | obs::kCliTrace |
                  obs::kCliBenchJson | obs::kCliProfile | obs::kCliSystem;
  if (with_repeat) mask |= obs::kCliRepeat;
  obs::CommonFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (obs::cli_consume_common("bench", arg, mask, flags)) continue;
    if (arg == "--help" || arg == "-h") {
      std::printf("options:\n%s", obs::cli_common_help(mask).c_str());
      std::exit(0);
    }
    std::fprintf(stderr, "unknown option: %s (try --help)\n", arg.c_str());
    std::exit(2);
  }
  Options opt;
  opt.runs = flags.runs;
  opt.seed = flags.seed;
  opt.jobs = flags.jobs;
  opt.system = flags.system;
  opt.jsonl = flags.jsonl;
  opt.csv = flags.csv;
  opt.trace = flags.trace;
  opt.trace_format = flags.trace_format;
  opt.bench_json = flags.bench_json;
  opt.profile = flags.profile;
  opt.repeat = flags.repeat;
  return opt;
}

/// min/median/stddev over the timed samples of a `--repeat=N` run — the
/// stable signal regression gating needs on noisy 1-core CI containers
/// (median gates; stddev is reported as informational).
struct RepeatStats {
  double min = 0.0;
  double median = 0.0;
  double stddev = 0.0;
};

inline RepeatStats summarize_repeats(std::vector<double> samples) {
  RepeatStats r;
  if (samples.empty()) return r;
  std::sort(samples.begin(), samples.end());
  r.min = samples.front();
  const std::size_t n = samples.size();
  r.median = n % 2 == 1 ? samples[n / 2]
                        : 0.5 * (samples[n / 2 - 1] + samples[n / 2]);
  double mean = 0.0;
  for (const double s : samples) mean += s;
  mean /= static_cast<double>(n);
  double ss = 0.0;
  for (const double s : samples) ss += (s - mean) * (s - mean);
  r.stddev = n > 1 ? std::sqrt(ss / static_cast<double>(n - 1)) : 0.0;
  return r;
}

/// Shared `--bench-json` / `--profile` lifecycle for a bench binary:
/// validates the output path up front (strict, exit 2), attaches the
/// self-profiler while measurements run, and on `finish()` prints the
/// host-time attribution table and/or writes the `pckpt-bench/1`
/// document. The standard identity keys (runs/seed/jobs/system) are
/// pre-filled as `config`.
class BenchTelemetry {
 public:
  BenchTelemetry(const Options& opt, std::string bench_name,
                 std::size_t resolved_jobs)
      : opt_(opt), writer_(std::move(bench_name)) {
    if (!opt_.bench_json.empty()) {
      std::ofstream probe(opt_.bench_json, std::ios::app);
      if (!probe) {
        std::fprintf(stderr, "--bench-json: cannot open '%s' for writing\n",
                     opt_.bench_json.c_str());
        std::exit(2);
      }
    }
    writer_.add_config("runs", static_cast<double>(opt_.runs));
    writer_.add_config("seed", static_cast<double>(opt_.seed));
    writer_.add_config("jobs", static_cast<double>(resolved_jobs));
    writer_.add_config("system", opt_.system);
    if (opt_.repeat > 0) {
      writer_.add_config("repeat", static_cast<double>(opt_.repeat));
    }
    // Attach only when nothing else is profiling (e.g. a binary stacking
    // several Engines): the first owner wins, the rest just read it.
    if (active() && obs::Profiler::active() == nullptr) {
      profiler_.emplace();
      profiler_->attach();
    }
  }

  ~BenchTelemetry() { finish(); }
  BenchTelemetry(const BenchTelemetry&) = delete;
  BenchTelemetry& operator=(const BenchTelemetry&) = delete;

  /// Telemetry requested at all (profiler attached, doc will be emitted)?
  bool active() const noexcept {
    return opt_.profile || !opt_.bench_json.empty();
  }

  void add_metric(std::string_view key, double value) {
    writer_.add_metric(key, value);
  }

  /// Stop profiling, render outputs. Idempotent; called by the dtor.
  void finish() {
    if (finished_) return;
    finished_ = true;
    obs::ProfileReport report;
    if (profiler_) {
      profiler_->detach();
      report = profiler_->report();
      writer_.set_profile(report);
    }
    if (opt_.profile && !report.empty()) {
      std::printf("\nhost-time attribution (%zu thread record(s), %.4f s "
                  "instrumented):\n%s",
                  report.threads, report.covered_s(),
                  report.to_string().c_str());
    }
    if (!opt_.bench_json.empty()) {
      try {
        writer_.write(opt_.bench_json);
        std::printf("\nwrote bench telemetry to %s\n", opt_.bench_json.c_str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "--bench-json: %s\n", e.what());
        std::exit(2);
      }
    }
  }

 private:
  Options opt_;
  obs::BenchJsonWriter writer_;
  std::optional<obs::Profiler> profiler_;
  bool finished_ = false;
};

/// Everything a campaign needs, built once per binary.
struct World {
  workload::Machine machine;
  iomodel::StorageModel storage;
  failure::LeadTimeModel leads;
  const failure::FailureSystem* system;

  explicit World(const std::string& system_name = "titan")
      : machine(workload::summit()),
        storage(machine.make_storage()),
        leads(failure::LeadTimeModel::summit_default()),
        system(&failure::system_by_name(system_name)) {}

  core::RunSetup setup(const workload::Application& app) const {
    core::RunSetup s;
    s.app = &app;
    s.machine = &machine;
    s.storage = &storage;
    s.system = system;
    s.leads = &leads;
    return s;
  }
};

/// The exec-subsystem front end every experiment binary runs through: owns
/// the worker pool (sized by --jobs), runs campaigns deterministically,
/// and mirrors each campaign's aggregate as a JSONL row when --jsonl is
/// given (schema: docs/EXECUTION.md).
class Engine {
 public:
  using Extras = std::initializer_list<std::pair<const char*, double>>;

  /// `append_jsonl` lets a binary that builds several engines in sequence
  /// (e.g. fig6b's two failure distributions) accumulate one JSONL file.
  Engine(const Options& opt, std::string bench_name, bool append_jsonl = false)
      : opt_(opt),
        bench_(std::move(bench_name)),
        jobs_(exec::resolve_jobs(opt.jobs)) {
    if (jobs_ > 1) {
      pool_ = std::make_unique<exec::ThreadPool>(jobs_);
      executor_ = std::make_unique<exec::ThreadPoolExecutor>(*pool_);
    } else {
      executor_ = std::make_unique<exec::SerialExecutor>();
    }
    if (!opt_.jsonl.empty()) {
      try {
        sink_ = std::make_unique<exec::JsonlSink>(opt_.jsonl, append_jsonl);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "--jsonl: %s\n", e.what());
        std::exit(2);
      }
    }
    if (!opt_.trace.empty()) {
      trace_out_.open(opt_.trace);
      if (!trace_out_) {
        std::fprintf(stderr, "--trace: cannot open '%s' for writing\n",
                     opt_.trace.c_str());
        std::exit(2);
      }
      trace_writer_ = obs::make_trace_writer(opt_.trace_format, trace_out_);
    }
    telemetry_ = std::make_unique<BenchTelemetry>(opt_, bench_, jobs_);
  }

  ~Engine() {
    if (trace_writer_) trace_writer_->finish();
    if (telemetry_) {
      telemetry_->add_metric("wall_s", total_wall_s_);
      telemetry_->add_metric("trials_per_s",
                             total_wall_s_ > 0.0
                                 ? static_cast<double>(total_trials_) /
                                       total_wall_s_
                                 : 0.0);
      telemetry_->finish();
    }
  }

  const Options& options() const noexcept { return opt_; }
  std::size_t jobs() const noexcept { return jobs_; }
  exec::Executor& executor() noexcept { return *executor_; }
  exec::JsonlSink* sink() noexcept { return sink_.get(); }
  bool tracing() const noexcept { return trace_writer_ != nullptr; }
  /// Rollup of everything traced so far (events.* / span_s.* entries);
  /// empty unless --trace is active.
  const obs::MetricsRegistry& metrics() const noexcept { return metrics_; }

  /// Run one campaign cell through the engine; emit its JSONL row.
  core::CampaignResult campaign(const core::RunSetup& setup,
                                const core::CrConfig& cfg,
                                std::string_view app,
                                std::string_view model_label,
                                Extras extras = {}) {
    const auto t0 = std::chrono::steady_clock::now();
    obs::CampaignTraceCollector collector;
    auto result = core::run_campaign(setup, cfg, opt_.runs, opt_.seed,
                                     *executor_, {},
                                     trace_writer_ ? &collector : nullptr);
    if (trace_writer_) {
      std::string label(app);
      label += '/';
      label += model_label;
      collector.write(*trace_writer_, label);
      collector.summarize(metrics_);
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    total_wall_s_ += wall_s;
    total_trials_ += opt_.runs;
    if (sink_) {
      exec::JsonlRow row;
      row.add("bench", bench_)
          .add("app", app)
          .add("model", model_label)
          .add("system", opt_.system)
          .add("runs", static_cast<std::uint64_t>(opt_.runs))
          .add("seed", opt_.seed)
          .add("jobs", static_cast<std::uint64_t>(jobs_));
      for (const auto& [key, v] : extras) row.add(key, v);
      row.add("ckpt_h", result.checkpoint_h())
          .add("recomp_h", result.recomputation_h())
          .add("recov_h", result.recovery_h())
          .add("migr_h", result.migration_h())
          .add("total_h", result.total_overhead_h())
          .add("makespan_h", result.makespan_s.mean() / 3600.0)
          .add("ft_ratio", result.pooled_ft_ratio())
          .add("failures_per_run", result.failures_per_run())
          .add("predicted_per_run", result.predicted_per_run())
          .add("mitigated_ckpt_per_run", result.mitigated_ckpt_per_run())
          .add("mitigated_lm_per_run", result.mitigated_lm_per_run())
          .add("unhandled_per_run", result.unhandled_per_run())
          .add("false_positives_per_run", result.false_positives_per_run())
          .add("mean_oci_s", result.mean_oci_s.mean())
          .add("wall_s", wall_s)
          .add("trials_per_s",
               wall_s > 0.0 ? static_cast<double>(opt_.runs) / wall_s : 0.0);
      sink_->write(row);
    }
    return result;
  }

  /// Paired five-model-style comparison through the engine, one JSONL row
  /// per model.
  std::vector<core::CampaignResult> comparison(
      const core::RunSetup& setup, const std::vector<core::CrConfig>& cfgs,
      std::string_view app, Extras extras = {}) {
    std::vector<core::CampaignResult> out;
    out.reserve(cfgs.size());
    for (const auto& cfg : cfgs) {
      out.push_back(campaign(setup, cfg, app,
                             std::string(core::to_string(cfg.kind)), extras));
    }
    return out;
  }

 private:
  Options opt_;
  std::string bench_;
  std::size_t jobs_;
  std::unique_ptr<exec::ThreadPool> pool_;
  std::unique_ptr<exec::Executor> executor_;
  std::unique_ptr<exec::JsonlSink> sink_;
  std::ofstream trace_out_;
  std::unique_ptr<obs::TraceWriter> trace_writer_;
  std::unique_ptr<BenchTelemetry> telemetry_;
  obs::MetricsRegistry metrics_;
  double total_wall_s_ = 0.0;
  std::uint64_t total_trials_ = 0;
};

/// JSONL emission for the table-only binaries (no campaigns): write every
/// row of the given tables to `opt.jsonl`, keyed by column header.
inline void write_tables_jsonl(
    const Options& opt, const char* bench_name,
    std::initializer_list<const analysis::Table*> tables) {
  if (opt.jsonl.empty()) return;
  std::ofstream out(opt.jsonl);
  if (!out) {
    std::fprintf(stderr, "--jsonl: cannot open '%s' for writing\n",
                 opt.jsonl.c_str());
    std::exit(2);
  }
  for (const analysis::Table* t : tables) t->print_jsonl(out, bench_name);
}

/// The five models of the paper with default knobs and a given lead scale.
inline std::vector<core::CrConfig> five_models(double lead_scale = 1.0) {
  std::vector<core::CrConfig> cfgs(5);
  cfgs[0].kind = core::ModelKind::kB;
  cfgs[1].kind = core::ModelKind::kM1;
  cfgs[2].kind = core::ModelKind::kM2;
  cfgs[3].kind = core::ModelKind::kP1;
  cfgs[4].kind = core::ModelKind::kP2;
  for (auto& c : cfgs) c.predictor.lead_scale = lead_scale;
  return cfgs;
}

inline core::CrConfig model(core::ModelKind kind, double lead_scale = 1.0) {
  core::CrConfig cfg;
  cfg.kind = kind;
  cfg.predictor.lead_scale = lead_scale;
  return cfg;
}

}  // namespace pckpt::bench
