#pragma once

/// \file bench_common.hpp
/// Shared scaffolding for the experiment binaries: argument parsing, the
/// Summit world (machine + storage + lead-time model), and the standard
/// five-model configuration set.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/cr_config.hpp"
#include "core/simulation.hpp"
#include "failure/lead_time_model.hpp"
#include "failure/system_catalog.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace pckpt::bench {

struct Options {
  std::size_t runs = 200;
  std::uint64_t seed = 2022;
  std::string system = "titan";
  bool csv = false;
};

inline Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--runs=")) {
      opt.runs = std::strtoul(v, nullptr, 10);
    } else if (const char* v2 = value("--seed=")) {
      opt.seed = std::strtoull(v2, nullptr, 10);
    } else if (const char* v3 = value("--system=")) {
      opt.system = v3;
    } else if (arg == "--csv") {
      opt.csv = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "options: --runs=N (default 200)  --seed=S (default 2022)\n"
          "         --system=titan|lanl8|lanl18  --csv\n");
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown option: %s (try --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  if (opt.runs == 0) {
    std::fprintf(stderr, "--runs must be >= 1\n");
    std::exit(2);
  }
  return opt;
}

/// Everything a campaign needs, built once per binary.
struct World {
  workload::Machine machine;
  iomodel::StorageModel storage;
  failure::LeadTimeModel leads;
  const failure::FailureSystem* system;

  explicit World(const std::string& system_name = "titan")
      : machine(workload::summit()),
        storage(machine.make_storage()),
        leads(failure::LeadTimeModel::summit_default()),
        system(&failure::system_by_name(system_name)) {}

  core::RunSetup setup(const workload::Application& app) const {
    core::RunSetup s;
    s.app = &app;
    s.machine = &machine;
    s.storage = &storage;
    s.system = system;
    s.leads = &leads;
    return s;
  }
};

/// The five models of the paper with default knobs and a given lead scale.
inline std::vector<core::CrConfig> five_models(double lead_scale = 1.0) {
  std::vector<core::CrConfig> cfgs(5);
  cfgs[0].kind = core::ModelKind::kB;
  cfgs[1].kind = core::ModelKind::kM1;
  cfgs[2].kind = core::ModelKind::kM2;
  cfgs[3].kind = core::ModelKind::kP1;
  cfgs[4].kind = core::ModelKind::kP2;
  for (auto& c : cfgs) c.predictor.lead_scale = lead_scale;
  return cfgs;
}

inline core::CrConfig model(core::ModelKind kind, double lead_scale = 1.0) {
  core::CrConfig cfg;
  cfg.kind = kind;
  cfg.predictor.lead_scale = lead_scale;
  return cfg;
}

}  // namespace pckpt::bench
