/// Fig. 2c — weak-scaling I/O performance matrix: aggregate bandwidth
/// (GB/s) over (node count x per-node transfer size). This is the matrix
/// the C/R models use to price every PFS checkpoint.

#include <iostream>
#include <string>
#include <vector>

#include "analysis/tables.hpp"
#include "bench/bench_common.hpp"
#include "iomodel/summit_io.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;
  const auto opt = bench::parse_options(argc, argv);
  const iomodel::SummitIOConfig cfg;
  const auto matrix = iomodel::make_summit_matrix(
      cfg, 4608.0, 13, 10);

  std::cout << "Fig. 2c — aggregate PFS write bandwidth (GB/s): nodes x "
               "per-node transfer size\n\n";

  std::vector<std::string> headers = {"nodes\\size"};
  for (double s : matrix.sizes_gb()) {
    if (s < 1.0) {
      headers.push_back(std::to_string(static_cast<int>(s * 1024.0)) + "MB");
    } else {
      headers.push_back(std::to_string(static_cast<int>(s)) + "GB");
    }
  }
  analysis::Table t(headers);
  for (std::size_t i = 0; i < matrix.node_counts().size(); ++i) {
    t.add_row();
    t.cell(static_cast<int>(matrix.node_counts()[i] + 0.5));
    for (std::size_t j = 0; j < matrix.sizes_gb().size(); ++j) {
      t.cell(matrix.cell(i, j), 1);
    }
  }
  if (opt.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }

  std::cout << "\ncheckpoint-write anchors derived from the matrix:\n";
  analysis::Table a({"application", "nodes", "per-node(GB)", "agg bw(GB/s)",
                     "full PFS write(s)"});
  const bench::World world;
  for (const auto& app : workload::summit_workloads()) {
    // One resolved query per application feeds both derived columns.
    const auto q = world.storage.pfs_aggregate_query(app.nodes,
                                                     app.ckpt_per_node_gb());
    a.add_row();
    a.cell(app.name)
        .cell(app.nodes)
        .cell(app.ckpt_per_node_gb(), 2)
        .cell(q.bandwidth_gbps(), 1)
        .cell(q.transfer_seconds(), 1);
  }
  if (opt.csv) {
    a.print_csv(std::cout);
  } else {
    a.print(std::cout);
  }
  bench::write_tables_jsonl(opt, "fig2c_io_matrix", {&t, &a});
  return 0;
}
