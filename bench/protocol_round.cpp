/// Sec. VI microcosts — node-granularity simulation of single p-ckpt
/// rounds: (a) coordination (broadcast/barrier) share vs I/O across node
/// counts, validating the paper's "~8 us barrier at 2048 nodes is
/// negligible" claim; (b) the priority-queue ablation: earliest-deadline
/// ordering vs FIFO/LIFO under bursts of concurrent predictions.

#include <iostream>
#include <vector>

#include "analysis/tables.hpp"
#include "bench/bench_common.hpp"
#include "core/protocol/coordinator.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"

namespace proto = pckpt::core::protocol;

int main(int argc, char** argv) {
  using namespace pckpt;
  const auto opt = bench::parse_options(argc, argv);

  std::cout << "Sec. VI — p-ckpt protocol round microcosts (CHIMERA-sized "
               "per-node state: 284.5 GB)\n\n";

  // (a) Coordination share vs node count.
  analysis::Table t({"nodes", "round(s)", "phase1(s)", "phase2(s)",
                     "coordination(us)", "coord share"});
  for (int nodes : {64, 256, 1024, 2048, 4096}) {
    proto::ProtocolConfig cfg;
    cfg.nodes = nodes;
    cfg.per_node_gb = 284.5;
    const auto r = proto::simulate_round(cfg, {{0, 0.0, 60.0}});
    t.add_row();
    t.cell(nodes)
        .cell(r.total_s, 2)
        .cell(r.phase1_s, 2)
        .cell(r.phase2_s, 2)
        .cell(r.coordination_s * 1e6, 2)
        .cell(r.coordination_s / r.total_s, 9);
  }
  if (opt.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }

  // (b) Priority-policy ablation: bursts of k concurrent predictions with
  // leads drawn from the mixture; how many nodes commit before their
  // deadline under each queue policy?
  std::cout << "\nPriority-queue ablation — mitigated fraction across "
            << opt.runs << " bursts of k concurrent predictions:\n";
  const auto leads = failure::LeadTimeModel::summit_default();
  analysis::Table ab({"burst k", "lead-time (EDF)", "FIFO", "LIFO"});
  for (int k : {2, 3, 5, 8}) {
    double mitigated[3] = {0, 0, 0};
    double total = 0;
    rnd::Xoshiro256 rng(opt.seed);
    for (std::size_t run = 0; run < opt.runs; ++run) {
      std::vector<proto::VulnerableSpec> specs;
      for (int i = 0; i < k; ++i) {
        // Arrivals spread over a few seconds, leads from the model; scale
        // leads up so multi-node bursts are partially servable at all.
        specs.push_back(
            {i, rng.uniform01() * 3.0,
             leads.sample(rng).lead_seconds * (1.0 + 0.4 * k)});
      }
      total += k;
      const proto::QueuePolicy policies[3] = {proto::QueuePolicy::kLeadTime,
                                              proto::QueuePolicy::kFifo,
                                              proto::QueuePolicy::kLifo};
      for (int p = 0; p < 3; ++p) {
        proto::ProtocolConfig cfg;
        cfg.nodes = 128;
        cfg.per_node_gb = 284.5;
        cfg.policy = policies[p];
        mitigated[p] += static_cast<double>(
            proto::simulate_round(cfg, specs).mitigated);
      }
    }
    ab.add_row();
    ab.cell(k)
        .cell(mitigated[0] / total, 3)
        .cell(mitigated[1] / total, 3)
        .cell(mitigated[2] / total, 3);
  }
  if (opt.csv) {
    ab.print_csv(std::cout);
  } else {
    ab.print(std::cout);
  }
  bench::write_tables_jsonl(opt, "protocol_round", {&t, &ab});
  std::cout << "\n(EDF = the paper's lead-time priority; its margin over "
               "FIFO/LIFO is the value of prioritization under bursty "
               "predictions.)\n";
  return 0;
}
