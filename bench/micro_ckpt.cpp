/// micro_ckpt — latency harness for campaign checkpointing
/// (docs/CHECKPOINTING.md), measured at the CampaignCheckpointer
/// boundary so the numbers isolate encode/journal/fsync cost from
/// engine scheduling noise:
///
///   commit.us        durably committing one shard result
///   resume.ms        reopen + decode of a 128-shard checkpoint
///   campaign.ms      reference campaign, checkpoint sink disabled
///   campaign_ckpt.ms same campaign with per-shard commits enabled
///   ckpt_overhead.pct relative cost of checkpointing the campaign
///
/// The campaign.ms pair doubles as the "checkpointing off is free"
/// guard: a null sink must not slow the engine, and the overhead of a
/// live sink stays bounded by the per-shard commit cost.
///
/// Emits pckpt-bench/1 telemetry via --bench-json; gated warn-only in
/// CI until a baseline trajectory exists (see .github/workflows/ci.yml).

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "ckpt/campaign_ckpt.hpp"
#include "core/campaign.hpp"
#include "exec/executor.hpp"

namespace {

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pckpt;
  auto opt = bench::parse_options(argc, argv, /*with_repeat=*/true);
  const std::size_t samples = opt.repeat > 0 ? opt.repeat : 1;

  const bench::World world(opt.system);
  const auto& app = workload::summit_workloads()[0];
  const auto setup = world.setup(app);
  core::CrConfig cfg;
  cfg.kind = core::ModelKind::kP2;

  const std::string dir = "/tmp/pckpt_micro_ckpt_" + std::to_string(::getpid());
  const std::string manifest = "micro_ckpt/commit-resume-harness";

  bench::BenchTelemetry telemetry(opt, "micro_ckpt", /*resolved_jobs=*/1);

  std::printf("micro_ckpt — campaign checkpoint latencies (%zu sample(s), "
              "campaign of %zu trials)\n\n",
              samples, opt.runs);

  // One representative shard result, reused for every commit below: the
  // commit path cost depends on the payload shape, not which trials
  // produced it.
  const core::CampaignResult shard_result =
      core::run_campaign_shard(setup, cfg, 0, 8, opt.seed);

  // 128 shards is enough log volume that the resume scan dominates the
  // open() syscalls without making a sample slow.
  constexpr std::size_t kShards = 128;
  constexpr std::size_t kShardTrials = 8;

  std::vector<double> commit_us, resume_ms, campaign_ms, campaign_ckpt_ms;
  for (std::size_t s = 0; s < samples + 1; ++s) {
    const bool warmup = s == 0;

    // Per-shard commit: encode + journal write + fsync + log append.
    {
      ckpt::CampaignCheckpointer writer(dir, manifest, kShards * kShardTrials,
                                        /*resume=*/false);
      const double t_commit = wall_seconds([&] {
        for (std::size_t i = 0; i < kShards; ++i) {
          writer.commit_shard(i, shard_result, i * kShardTrials,
                              (i + 1) * kShardTrials, nullptr);
        }
      });

      // Resume replay: reopen the fully-committed log and decode every
      // shard back into engine results.
      double t_resume = 0.0;
      {
        std::optional<ckpt::CampaignCheckpointer> reader;
        core::CampaignResult out;
        std::size_t loaded = 0;
        t_resume = wall_seconds([&] {
          reader.emplace(dir, manifest, kShards * kShardTrials,
                         /*resume=*/true);
          while (loaded < kShards && reader->load_shard(loaded, out, nullptr)) {
            ++loaded;
          }
        });
        if (loaded != kShards) {
          std::fprintf(stderr, "resume decoded %zu/%zu shards\n", loaded,
                       kShards);
          return 1;
        }
        reader->remove();
      }
      if (!warmup) {
        commit_us.push_back(t_commit / kShards * 1e6);
        resume_ms.push_back(t_resume * 1e3);
      }
    }

    // Whole-campaign cost with the sink disabled (the engine's default
    // path) and enabled — same trials, same serial executor.
    exec::SerialExecutor ex;
    core::CampaignResult plain;
    const double t_plain = wall_seconds([&] {
      plain = core::run_campaign(setup, cfg, opt.runs, opt.seed, ex, {},
                                 nullptr, nullptr);
    });
    core::CampaignResult ckpted;
    double t_ckpt = 0.0;
    {
      ckpt::CampaignCheckpointer sink(dir, manifest, opt.runs,
                                      /*resume=*/false);
      t_ckpt = wall_seconds([&] {
        ckpted = core::run_campaign(setup, cfg, opt.runs, opt.seed, ex, {},
                                    nullptr, &sink);
      });
      sink.remove();
    }
    if (ckpted.makespan_s.mean() != plain.makespan_s.mean()) {
      std::fprintf(stderr, "checkpointed campaign diverged from plain run\n");
      return 1;
    }

    if (warmup) continue;
    campaign_ms.push_back(t_plain * 1e3);
    campaign_ckpt_ms.push_back(t_ckpt * 1e3);
    std::printf("sample %zu: commit %.2f us, resume(%zu shards) %.3f ms, "
                "campaign %.2f ms plain / %.2f ms checkpointed\n",
                s, commit_us.back(), kShards, resume_ms.back(),
                campaign_ms.back(), campaign_ckpt_ms.back());
  }

  const auto commit = bench::summarize_repeats(commit_us);
  const auto resume = bench::summarize_repeats(resume_ms);
  const auto plain = bench::summarize_repeats(campaign_ms);
  const auto ckpted = bench::summarize_repeats(campaign_ckpt_ms);
  const double overhead_pct =
      plain.median > 0.0 ? (ckpted.median - plain.median) / plain.median * 100.0
                         : 0.0;
  std::printf("\nmedians: commit %.2f us, resume %.3f ms, campaign %.2f ms, "
              "checkpointed %.2f ms (overhead %.1f%%)\n",
              commit.median, resume.median, plain.median, ckpted.median,
              overhead_pct);

  telemetry.add_metric("commit.us.median", commit.median);
  telemetry.add_metric("commit.us.min", commit.min);
  telemetry.add_metric("commit.us.stddev", commit.stddev);
  telemetry.add_metric("resume.ms.median", resume.median);
  telemetry.add_metric("resume.ms.min", resume.min);
  telemetry.add_metric("resume.ms.stddev", resume.stddev);
  telemetry.add_metric("campaign.ms.median", plain.median);
  telemetry.add_metric("campaign.ms.min", plain.min);
  telemetry.add_metric("campaign_ckpt.ms.median", ckpted.median);
  telemetry.add_metric("campaign_ckpt.ms.min", ckpted.min);
  telemetry.add_metric("ckpt_overhead.pct", overhead_pct);
  telemetry.finish();
  return 0;
}
