/// micro_exec — throughput and determinism harness for the parallel
/// campaign engine.  Part 1 times the same campaign serially and through
/// a thread pool, reporting trials/sec and speedup.  Part 2 is a stress
/// test: the campaign is re-run with jobs in {1, 2, 7, 16} and every
/// aggregate must be bit-identical to the serial reference; a mismatch is
/// a hard failure (nonzero exit), because it breaks the engine's core
/// contract (docs/EXECUTION.md).

#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>
#include <tuple>
#include <vector>

#include "analysis/tables.hpp"
#include "bench/bench_common.hpp"
#include "core/campaign.hpp"
#include "exec/thread_pool.hpp"

namespace {

using pckpt::core::CampaignResult;

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Bit-exact comparison of every aggregate the engine merges.  Welford
/// state is compared field-by-field: any divergence in mean/variance/
/// min/max or in the raw count totals means the shard plan or merge
/// order leaked a dependence on the thread count.
bool stats_identical(const pckpt::stats::OnlineStats& a,
                     const pckpt::stats::OnlineStats& b) {
  return a.count() == b.count() && a.mean() == b.mean() &&
         a.variance() == b.variance() && a.min() == b.min() &&
         a.max() == b.max();
}

bool results_identical(const CampaignResult& a, const CampaignResult& b) {
  return a.runs == b.runs && a.kind == b.kind &&
         stats_identical(a.checkpoint_s, b.checkpoint_s) &&
         stats_identical(a.recomputation_s, b.recomputation_s) &&
         stats_identical(a.recovery_s, b.recovery_s) &&
         stats_identical(a.migration_s, b.migration_s) &&
         stats_identical(a.total_overhead_s, b.total_overhead_s) &&
         stats_identical(a.makespan_s, b.makespan_s) &&
         stats_identical(a.ft_ratio, b.ft_ratio) &&
         stats_identical(a.mean_oci_s, b.mean_oci_s) &&
         a.failures == b.failures && a.predicted == b.predicted &&
         a.mitigated_ckpt == b.mitigated_ckpt &&
         a.mitigated_lm == b.mitigated_lm && a.unhandled == b.unhandled &&
         a.false_positives == b.false_positives;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pckpt;
  auto opt = bench::parse_options(argc, argv, /*with_repeat=*/true);
  if (opt.runs == 200) opt.runs = 500;  // default: a 500-trial campaign

  const bench::World world(opt.system);
  const auto& app = workload::summit_workloads()[0];
  const auto setup = world.setup(app);
  core::CrConfig cfg;
  cfg.kind = core::ModelKind::kP2;

  const std::size_t jobs = exec::resolve_jobs(opt.jobs);
  bench::BenchTelemetry telemetry(opt, "micro_exec", jobs);

  std::printf("micro_exec — campaign engine throughput and determinism\n");
  std::printf("workload: %s, model P2, %zu trials, base seed %llu\n\n",
              app.name.c_str(), opt.runs,
              static_cast<unsigned long long>(opt.seed));

  // ---- Part 1: serial vs parallel throughput. ------------------------
  // With --repeat=N: one untimed warmup, then N timed samples per mode,
  // reported as min/median/stddev (the median gates regressions; a single
  // sample is far too noisy on 1-core CI containers).
  //
  // All serial samples run before the ThreadPool exists: glibc malloc
  // stays on its single-threaded fast path until the first pthread is
  // spawned, and the campaign's coroutine frames allocate enough that
  // creating the pool up front costs the serial runs ~15% — which would
  // read as a phantom regression against pre-pool baselines.
  CampaignResult serial;
  CampaignResult parallel;
  const std::size_t samples = opt.repeat > 0 ? opt.repeat : 1;
  if (opt.repeat > 0) {
    std::printf("repeat mode: 1 warmup + %zu samples per mode\n\n", samples);
    core::run_campaign(setup, cfg, opt.runs, opt.seed);  // warmup
  }
  std::vector<double> serial_walls, pool_walls;
  for (std::size_t s = 0; s < samples; ++s) {
    serial_walls.push_back(wall_seconds([&] {
      serial = core::run_campaign(setup, cfg, opt.runs, opt.seed);
    }));
  }
  exec::ThreadPool pool(jobs);
  exec::ThreadPoolExecutor pool_exec(pool);
  for (std::size_t s = 0; s < samples; ++s) {
    pool_walls.push_back(wall_seconds([&] {
      parallel = core::run_campaign(setup, cfg, opt.runs, opt.seed, pool_exec);
    }));
  }
  auto rates = [&](const std::vector<double>& walls) {
    std::vector<double> r;
    for (const double w : walls) {
      r.push_back(w > 0.0 ? static_cast<double>(opt.runs) / w : 0.0);
    }
    return bench::summarize_repeats(std::move(r));
  };
  const bench::RepeatStats serial_rate = rates(serial_walls);
  const bench::RepeatStats pool_rate = rates(pool_walls);
  const double serial_s = bench::summarize_repeats(serial_walls).median;
  const double parallel_s = bench::summarize_repeats(pool_walls).median;

  analysis::Table t(opt.repeat > 0
                        ? std::vector<std::string>{"mode", "jobs", "wall(s)",
                                                   "trials/s med", "min",
                                                   "stddev", "speedup"}
                        : std::vector<std::string>{"mode", "jobs", "wall(s)",
                                                   "trials/s", "speedup"});
  t.add_row();
  t.cell("serial").cell(1).cell(serial_s, 3).cell(serial_rate.median, 1);
  if (opt.repeat > 0) {
    t.cell(serial_rate.min, 1).cell(serial_rate.stddev, 1);
  }
  t.cell(1.0, 2);
  t.add_row();
  t.cell("pool")
      .cell(static_cast<int>(jobs))
      .cell(parallel_s, 3)
      .cell(pool_rate.median, 1);
  if (opt.repeat > 0) {
    t.cell(pool_rate.min, 1).cell(pool_rate.stddev, 1);
  }
  t.cell(serial_s / parallel_s, 2);
  if (opt.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }

  if (opt.repeat > 0) {
    telemetry.add_metric("serial.trials_per_s.median", serial_rate.median);
    telemetry.add_metric("serial.trials_per_s.min", serial_rate.min);
    telemetry.add_metric("serial.trials_per_s.stddev", serial_rate.stddev);
    telemetry.add_metric("pool.trials_per_s.median", pool_rate.median);
    telemetry.add_metric("pool.trials_per_s.min", pool_rate.min);
    telemetry.add_metric("pool.trials_per_s.stddev", pool_rate.stddev);
    telemetry.add_metric("speedup.median", serial_s / parallel_s);
  } else {
    telemetry.add_metric("serial.trials_per_s", serial_rate.median);
    telemetry.add_metric("pool.trials_per_s", pool_rate.median);
    telemetry.add_metric("speedup", serial_s / parallel_s);
  }

  if (opt.jsonl.empty()) {
    std::printf("\n");
  } else try {
    exec::JsonlSink sink(opt.jsonl);
    for (const auto& [mode, n, secs] :
         std::vector<std::tuple<const char*, std::size_t, double>>{
             {"serial", 1, serial_s}, {"pool", jobs, parallel_s}}) {
      exec::JsonlRow row;
      row.add("bench", "micro_exec");
      row.add("mode", mode);
      row.add("jobs", n);
      row.add("runs", opt.runs);
      row.add("seed", opt.seed);
      row.add("wall_s", secs);
      row.add("trials_per_s", static_cast<double>(opt.runs) / secs);
      row.add("speedup", serial_s / secs);
      sink.write(row);
    }
    std::printf("\nwrote %zu rows to %s\n\n", sink.rows_written(),
                opt.jsonl.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "--jsonl: %s\n", e.what());
    return 2;
  }

  // ---- Part 2: determinism stress across thread counts. --------------
  std::printf("determinism stress — aggregates must be bit-identical to "
              "the serial reference:\n");
  bool ok = results_identical(serial, parallel);
  std::printf("  jobs=%-2zu (timed run above)   %s\n", jobs,
              ok ? "identical" : "MISMATCH");
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                              std::size_t{16}}) {
    exec::ThreadPool p(n);
    exec::ThreadPoolExecutor ex(p);
    const auto r = core::run_campaign(setup, cfg, opt.runs, opt.seed, ex);
    const bool same = results_identical(serial, r);
    ok = ok && same;
    std::printf("  jobs=%-2zu                    %s\n", n,
                same ? "identical" : "MISMATCH");
  }
  if (!ok) {
    std::fprintf(stderr,
                 "\nmicro_exec: FAILED — results depend on thread count\n");
    return 1;
  }
  std::printf("\nall thread counts agree bit-for-bit with the serial run\n");
  return 0;
}
