/// micro_exec — throughput and determinism harness for the parallel
/// campaign engine.  Part 1 times the same campaign serially and through
/// a thread pool, reporting trials/sec and speedup.  Part 2 is a stress
/// test: the campaign is re-run with jobs in {1, 2, 7, 16} and every
/// aggregate must be bit-identical to the serial reference; a mismatch is
/// a hard failure (nonzero exit), because it breaks the engine's core
/// contract (docs/EXECUTION.md).

#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>
#include <tuple>
#include <vector>

#include "analysis/tables.hpp"
#include "bench/bench_common.hpp"
#include "core/campaign.hpp"
#include "exec/thread_pool.hpp"

namespace {

using pckpt::core::CampaignResult;

double wall_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Bit-exact comparison of every aggregate the engine merges.  Welford
/// state is compared field-by-field: any divergence in mean/variance/
/// min/max or in the raw count totals means the shard plan or merge
/// order leaked a dependence on the thread count.
bool stats_identical(const pckpt::stats::OnlineStats& a,
                     const pckpt::stats::OnlineStats& b) {
  return a.count() == b.count() && a.mean() == b.mean() &&
         a.variance() == b.variance() && a.min() == b.min() &&
         a.max() == b.max();
}

bool results_identical(const CampaignResult& a, const CampaignResult& b) {
  return a.runs == b.runs && a.kind == b.kind &&
         stats_identical(a.checkpoint_s, b.checkpoint_s) &&
         stats_identical(a.recomputation_s, b.recomputation_s) &&
         stats_identical(a.recovery_s, b.recovery_s) &&
         stats_identical(a.migration_s, b.migration_s) &&
         stats_identical(a.total_overhead_s, b.total_overhead_s) &&
         stats_identical(a.makespan_s, b.makespan_s) &&
         stats_identical(a.ft_ratio, b.ft_ratio) &&
         stats_identical(a.mean_oci_s, b.mean_oci_s) &&
         a.failures == b.failures && a.predicted == b.predicted &&
         a.mitigated_ckpt == b.mitigated_ckpt &&
         a.mitigated_lm == b.mitigated_lm && a.unhandled == b.unhandled &&
         a.false_positives == b.false_positives;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pckpt;
  auto opt = bench::parse_options(argc, argv);
  if (opt.runs == 200) opt.runs = 500;  // default: a 500-trial campaign

  const bench::World world(opt.system);
  const auto& app = workload::summit_workloads()[0];
  const auto setup = world.setup(app);
  core::CrConfig cfg;
  cfg.kind = core::ModelKind::kP2;

  std::printf("micro_exec — campaign engine throughput and determinism\n");
  std::printf("workload: %s, model P2, %zu trials, base seed %llu\n\n",
              app.name.c_str(), opt.runs,
              static_cast<unsigned long long>(opt.seed));

  // ---- Part 1: serial vs parallel throughput. ------------------------
  CampaignResult serial;
  const double serial_s = wall_seconds([&] {
    serial = core::run_campaign(setup, cfg, opt.runs, opt.seed);
  });

  const std::size_t jobs = exec::resolve_jobs(opt.jobs);
  exec::ThreadPool pool(jobs);
  exec::ThreadPoolExecutor pool_exec(pool);
  CampaignResult parallel;
  const double parallel_s = wall_seconds([&] {
    parallel = core::run_campaign(setup, cfg, opt.runs, opt.seed, pool_exec);
  });

  analysis::Table t({"mode", "jobs", "wall(s)", "trials/s", "speedup"});
  t.add_row();
  t.cell("serial")
      .cell(1)
      .cell(serial_s, 3)
      .cell(static_cast<double>(opt.runs) / serial_s, 1)
      .cell(1.0, 2);
  t.add_row();
  t.cell("pool")
      .cell(static_cast<int>(jobs))
      .cell(parallel_s, 3)
      .cell(static_cast<double>(opt.runs) / parallel_s, 1)
      .cell(serial_s / parallel_s, 2);
  if (opt.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
  }

  if (opt.jsonl.empty()) {
    std::printf("\n");
  } else try {
    exec::JsonlSink sink(opt.jsonl);
    for (const auto& [mode, n, secs] :
         std::vector<std::tuple<const char*, std::size_t, double>>{
             {"serial", 1, serial_s}, {"pool", jobs, parallel_s}}) {
      exec::JsonlRow row;
      row.add("bench", "micro_exec");
      row.add("mode", mode);
      row.add("jobs", n);
      row.add("runs", opt.runs);
      row.add("seed", opt.seed);
      row.add("wall_s", secs);
      row.add("trials_per_s", static_cast<double>(opt.runs) / secs);
      row.add("speedup", serial_s / secs);
      sink.write(row);
    }
    std::printf("\nwrote %zu rows to %s\n\n", sink.rows_written(),
                opt.jsonl.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "--jsonl: %s\n", e.what());
    return 2;
  }

  // ---- Part 2: determinism stress across thread counts. --------------
  std::printf("determinism stress — aggregates must be bit-identical to "
              "the serial reference:\n");
  bool ok = results_identical(serial, parallel);
  std::printf("  jobs=%-2zu (timed run above)   %s\n", jobs,
              ok ? "identical" : "MISMATCH");
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                              std::size_t{16}}) {
    exec::ThreadPool p(n);
    exec::ThreadPoolExecutor ex(p);
    const auto r = core::run_campaign(setup, cfg, opt.runs, opt.seed, ex);
    const bool same = results_identical(serial, r);
    ok = ok && same;
    std::printf("  jobs=%-2zu                    %s\n", n,
                same ? "identical" : "MISMATCH");
  }
  if (!ok) {
    std::fprintf(stderr,
                 "\nmicro_exec: FAILED — results depend on thread count\n");
    return 1;
  }
  std::printf("\nall thread counts agree bit-for-bit with the serial run\n");
  return 0;
}
