/// Microbenchmarks (google-benchmark): DES kernel event throughput,
/// coroutine process switching, performance-matrix lookups, RNG sampling,
/// and one full end-to-end simulated run per model.
///
/// On top of google-benchmark's own flags this binary accepts the repo's
/// bench-telemetry flags: `--repeat=N` (maps to N repetitions reporting
/// aggregates only) and `--bench-json=PATH` (pckpt-bench/1 document, one
/// metric per benchmark/aggregate; see docs/OBSERVABILITY.md).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/simulation.hpp"
#include "failure/lead_time_model.hpp"
#include "failure/system_catalog.hpp"
#include "iomodel/summit_io.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"
#include "sim/sim.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace {

using namespace pckpt;

void BM_EventScheduling(benchmark::State& state) {
  for (auto _ : state) {
    sim::Environment env;
    for (int i = 0; i < 1024; ++i) {
      env.timeout(static_cast<double>(i % 37));
    }
    env.run();
    benchmark::DoNotOptimize(env.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventScheduling);

sim::Process ping(sim::Environment& env, int hops) {
  for (int i = 0; i < hops; ++i) co_await env.timeout(1.0);
}

void BM_ProcessSwitching(benchmark::State& state) {
  for (auto _ : state) {
    sim::Environment env;
    for (int p = 0; p < 16; ++p) env.spawn(ping(env, 64));
    env.run();
    benchmark::DoNotOptimize(env.now());
  }
  state.SetItemsProcessed(state.iterations() * 16 * 64);
}
BENCHMARK(BM_ProcessSwitching);

void BM_PerfMatrixLookup(benchmark::State& state) {
  const auto m = iomodel::make_summit_matrix({}, 4608.0, 17, 14);
  double n = 1.0;
  for (auto _ : state) {
    n = n > 4000.0 ? 1.5 : n * 1.7;
    benchmark::DoNotOptimize(m.bandwidth(n, 17.3));
  }
}
BENCHMARK(BM_PerfMatrixLookup);

void BM_WeibullSampling(benchmark::State& state) {
  rnd::Xoshiro256 g(42);
  const rnd::Weibull w(0.6885, 5.4527);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w(g));
  }
}
BENCHMARK(BM_WeibullSampling);

void BM_LeadTimeSampling(benchmark::State& state) {
  rnd::Xoshiro256 g(42);
  const auto leads = failure::LeadTimeModel::summit_default();
  for (auto _ : state) {
    benchmark::DoNotOptimize(leads.sample(g).lead_seconds);
  }
}
BENCHMARK(BM_LeadTimeSampling);

void BM_FullRun(benchmark::State& state) {
  const auto machine = workload::summit();
  const auto storage = machine.make_storage();
  const auto leads = failure::LeadTimeModel::summit_default();
  const auto& app = workload::workload_by_name("XGC");
  core::RunSetup setup;
  setup.app = &app;
  setup.machine = &machine;
  setup.storage = &storage;
  setup.system = &failure::system_by_name("titan");
  setup.leads = &leads;
  core::CrConfig cfg;
  cfg.kind = static_cast<core::ModelKind>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    setup.seed = ++seed;
    benchmark::DoNotOptimize(core::simulate_run(setup, cfg).makespan_s);
  }
}
BENCHMARK(BM_FullRun)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

/// ConsoleReporter that also keeps every reported run so the main below
/// can translate them into pckpt-bench/1 metrics after the fact.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) runs_.push_back(run);
    ConsoleReporter::ReportRuns(report);
  }

  const std::vector<Run>& runs() const noexcept { return runs_; }

 private:
  std::vector<Run> runs_;
};

}  // namespace

int main(int argc, char** argv) {
  using benchmark::BenchmarkReporter;

  // Split our flags from google-benchmark's. `--repeat=N` becomes
  // N repetitions with aggregate-only reporting (median/stddev per
  // benchmark — the stable signal for gating); everything unrecognized
  // is left for benchmark::Initialize to validate.
  std::string bench_json;
  std::uint64_t repeat = 0;
  std::vector<std::string> passthrough;
  passthrough.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--bench-json=", 0) == 0) {
      bench_json = arg.substr(13);
      if (bench_json.empty()) {
        std::fprintf(stderr, "--bench-json: missing output path\n");
        return 2;
      }
    } else if (arg.rfind("--repeat=", 0) == 0) {
      repeat = pckpt::bench::parse_u64_flag("--repeat", arg.c_str() + 9);
      if (repeat == 0) {
        std::fprintf(stderr, "--repeat must be >= 1\n");
        return 2;
      }
    } else {
      passthrough.push_back(arg);
    }
  }
  if (repeat > 0) {
    passthrough.push_back("--benchmark_repetitions=" + std::to_string(repeat));
    passthrough.push_back("--benchmark_report_aggregates_only=true");
  }
  std::vector<char*> gb_argv;
  for (std::string& s : passthrough) gb_argv.push_back(s.data());
  int gb_argc = static_cast<int>(gb_argv.size());
  benchmark::Initialize(&gb_argc, gb_argv.data());
  if (benchmark::ReportUnrecognizedArguments(gb_argc, gb_argv.data())) {
    return 2;
  }

  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (bench_json.empty()) return 0;

  pckpt::obs::BenchJsonWriter writer("micro_des");
  writer.add_config("repetitions",
                    static_cast<double>(repeat > 0 ? repeat : 1));
  for (const BenchmarkReporter::Run& run : reporter.runs()) {
    if (run.error_occurred) continue;
    // "BM_FullRun/2.real_us" (+ ".median"/".stddev" for aggregates):
    // real time is lower-is-better by the naming convention, and
    // items_per_second maps to a higher-is-better `_per_s` metric.
    std::string name = run.run_name.str();
    name += ".real_";
    name += benchmark::GetTimeUnitString(run.time_unit);
    std::string suffix;
    if (run.run_type == BenchmarkReporter::Run::RT_Aggregate) {
      if (run.aggregate_name == "cv") continue;  // noise ratio, not a metric
      suffix = "." + run.aggregate_name;
    }
    writer.add_metric(name + suffix, run.GetAdjustedRealTime());
    const auto items = run.counters.find("items_per_second");
    if (items != run.counters.end()) {
      std::string base = run.run_name.str();
      writer.add_metric(base + ".items_per_s" + suffix,
                        static_cast<double>(items->second));
    }
  }
  try {
    writer.write(bench_json);
    std::printf("wrote bench telemetry to %s\n", bench_json.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "--bench-json: %s\n", e.what());
    return 2;
  }
  return 0;
}
