/// Microbenchmarks (google-benchmark): DES kernel event throughput,
/// coroutine process switching, performance-matrix lookups, RNG sampling,
/// and one full end-to-end simulated run per model.

#include <benchmark/benchmark.h>

#include "core/simulation.hpp"
#include "failure/lead_time_model.hpp"
#include "failure/system_catalog.hpp"
#include "iomodel/summit_io.hpp"
#include "random/distributions.hpp"
#include "random/rng.hpp"
#include "sim/sim.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

namespace {

using namespace pckpt;

void BM_EventScheduling(benchmark::State& state) {
  for (auto _ : state) {
    sim::Environment env;
    for (int i = 0; i < 1024; ++i) {
      env.timeout(static_cast<double>(i % 37));
    }
    env.run();
    benchmark::DoNotOptimize(env.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventScheduling);

sim::Process ping(sim::Environment& env, int hops) {
  for (int i = 0; i < hops; ++i) co_await env.timeout(1.0);
}

void BM_ProcessSwitching(benchmark::State& state) {
  for (auto _ : state) {
    sim::Environment env;
    for (int p = 0; p < 16; ++p) env.spawn(ping(env, 64));
    env.run();
    benchmark::DoNotOptimize(env.now());
  }
  state.SetItemsProcessed(state.iterations() * 16 * 64);
}
BENCHMARK(BM_ProcessSwitching);

void BM_PerfMatrixLookup(benchmark::State& state) {
  const auto m = iomodel::make_summit_matrix({}, 4608.0, 17, 14);
  double n = 1.0;
  for (auto _ : state) {
    n = n > 4000.0 ? 1.5 : n * 1.7;
    benchmark::DoNotOptimize(m.bandwidth(n, 17.3));
  }
}
BENCHMARK(BM_PerfMatrixLookup);

void BM_WeibullSampling(benchmark::State& state) {
  rnd::Xoshiro256 g(42);
  const rnd::Weibull w(0.6885, 5.4527);
  for (auto _ : state) {
    benchmark::DoNotOptimize(w(g));
  }
}
BENCHMARK(BM_WeibullSampling);

void BM_LeadTimeSampling(benchmark::State& state) {
  rnd::Xoshiro256 g(42);
  const auto leads = failure::LeadTimeModel::summit_default();
  for (auto _ : state) {
    benchmark::DoNotOptimize(leads.sample(g).lead_seconds);
  }
}
BENCHMARK(BM_LeadTimeSampling);

void BM_FullRun(benchmark::State& state) {
  const auto machine = workload::summit();
  const auto storage = machine.make_storage();
  const auto leads = failure::LeadTimeModel::summit_default();
  const auto& app = workload::workload_by_name("XGC");
  core::RunSetup setup;
  setup.app = &app;
  setup.machine = &machine;
  setup.storage = &storage;
  setup.system = &failure::system_by_name("titan");
  setup.leads = &leads;
  core::CrConfig cfg;
  cfg.kind = static_cast<core::ModelKind>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    setup.seed = ++seed;
    benchmark::DoNotOptimize(core::simulate_run(setup, cfg).makespan_s);
  }
}
BENCHMARK(BM_FullRun)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
