#pragma once

/// \file leadtime_sweep.hpp
/// Shared implementation of the lead-time-variability experiments
/// (Figs. 4 and 7): per-category overhead reduction relative to model B as
/// the prediction lead times are scaled.

#include <iostream>
#include <string>
#include <vector>

#include "analysis/tables.hpp"
#include "bench/bench_common.hpp"

namespace pckpt::bench {

inline void run_leadtime_sweep(const Options& opt,
                               const std::vector<core::ModelKind>& kinds,
                               const char* figure_name, const char* slug) {
  const World world(opt.system);
  Engine engine(opt, slug);
  const std::vector<const char*> apps = {"CHIMERA", "XGC", "POP"};
  const std::vector<double> deltas = {-0.50, -0.40, -0.30, -0.20, -0.10,
                                      0.0,   0.10,  0.20,  0.30,  0.40,
                                      0.50};

  std::cout << figure_name
            << " — overhead reduction vs model B (%) over lead-time "
               "variation; "
            << opt.runs << " paired runs per point, failure distribution: "
            << world.system->name << "\n";
  std::cout << "(100% = overhead eliminated, 0% = unchanged, negative = "
               "worse than B)\n\n";

  for (const char* app_name : apps) {
    const auto& app = workload::workload_by_name(app_name);
    const auto setup = world.setup(app);

    // Model B is insensitive to lead scaling: compute it once.
    const auto base = engine.campaign(setup, model(core::ModelKind::kB),
                                      app_name, "B", {{"lead_scale", 1.0}});

    std::vector<std::string> headers = {"leadΔ"};
    for (auto k : kinds) {
      const std::string n(core::to_string(k));
      headers.push_back(n + " ckpt");
      headers.push_back(n + " recomp");
      headers.push_back(n + " recov");
      headers.push_back(n + " total");
      headers.push_back(n + " FT");
    }
    analysis::Table t(headers);

    for (double d : deltas) {
      t.add_row();
      t.cell_percent(d * 100.0, 0);
      for (auto k : kinds) {
        const auto r = engine.campaign(setup, model(k, 1.0 + d), app_name,
                                       core::to_string(k),
                                       {{"lead_scale", 1.0 + d}});
        t.cell_percent(core::percent_reduction(base.checkpoint_s.mean(),
                                               r.checkpoint_s.mean()),
                       1);
        t.cell_percent(core::percent_reduction(base.recomputation_s.mean(),
                                               r.recomputation_s.mean()),
                       1);
        t.cell_percent(core::percent_reduction(base.recovery_s.mean(),
                                               r.recovery_s.mean()),
                       1);
        t.cell_percent(core::percent_reduction(base.total_overhead_s.mean(),
                                               r.total_overhead_s.mean()),
                       1);
        t.cell(r.pooled_ft_ratio(), 3);
      }
    }

    std::cout << "--- " << app.name << " (" << app.nodes << " nodes, base "
              << "overhead " << analysis::hours(base.total_overhead_s.mean())
              << " h: ckpt " << analysis::hours(base.checkpoint_s.mean())
              << " h, recomp "
              << analysis::hours(base.recomputation_s.mean()) << " h, recov "
              << analysis::hours(base.recovery_s.mean()) << " h) ---\n";
    if (opt.csv) {
      t.print_csv(std::cout);
    } else {
      t.print(std::cout);
    }
    std::cout << '\n';
  }
}

}  // namespace pckpt::bench
