/// Fig. 4 — impact of lead-time variability on the prior-work models:
/// M1 (safeguard checkpointing) and M2 (live migration), for CHIMERA, XGC
/// and POP, relative to the base model B.

#include "bench/leadtime_sweep.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;
  const auto opt = bench::parse_options(argc, argv);
  bench::run_leadtime_sweep(
      opt, {core::ModelKind::kM1, core::ModelKind::kM2}, "Fig. 4",
      "fig4_leadtime_m1m2");
  return 0;
}
