/// Lead-time sensitivity study for one application: how prediction lead
/// time scaling moves the FT ratio and the overhead split for a chosen
/// model — a self-serve version of the paper's Figs. 4/7 for any workload.
///
/// Usage: leadtime_study [app] [model] [runs]
///   defaults: CHIMERA P2 100

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/campaign.hpp"
#include "core/simulation.hpp"
#include "failure/lead_time_model.hpp"
#include "failure/system_catalog.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;
  const std::string app_name = argc > 1 ? argv[1] : "CHIMERA";
  const auto kind = core::model_from_string(argc > 2 ? argv[2] : "P2");
  const std::size_t runs = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 100;

  const auto& app = workload::workload_by_name(app_name);
  const auto machine = workload::summit();
  const auto storage = machine.make_storage();
  const auto& system = failure::system_by_name("titan");
  const auto leads = failure::LeadTimeModel::summit_default();

  core::RunSetup setup;
  setup.app = &app;
  setup.machine = &machine;
  setup.storage = &storage;
  setup.system = &system;
  setup.leads = &leads;

  core::CrConfig base_cfg;
  base_cfg.kind = core::ModelKind::kB;
  const auto base = core::run_campaign(setup, base_cfg, runs, 4242);

  std::printf("leadtime_study: %s under %s, %zu paired runs; base overhead "
              "%.2f h\n\n",
              app.name.c_str(), std::string(core::to_string(kind)).c_str(),
              runs, base.total_overhead_h());
  std::printf("%7s %9s %9s %9s %9s %9s %7s\n", "leadΔ", "ckpt(h)",
              "recomp(h)", "recov(h)", "total(h)", "%ofB", "FT");
  for (double d = -0.9; d <= 0.91; d += 0.15) {
    core::CrConfig cfg;
    cfg.kind = kind;
    cfg.predictor.lead_scale = 1.0 + d;
    const auto r = core::run_campaign(setup, cfg, runs, 4242);
    std::printf("%+6.0f%% %9.3f %9.3f %9.3f %9.3f %8.1f%% %7.3f\n", d * 100.0,
                r.checkpoint_h(), r.recomputation_h(), r.recovery_h(),
                r.total_overhead_h(),
                100.0 * r.total_overhead_s.mean() /
                    base.total_overhead_s.mean(),
                r.pooled_ft_ratio());
  }
  return 0;
}
