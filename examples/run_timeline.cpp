/// Timeline demo: simulate one run with per-phase recording enabled and
/// print an ASCII Gantt strip of the whole execution plus the phase
/// totals and event markers — a quick way to see how p-ckpt rounds,
/// recoveries and live migrations interleave with computation.
///
/// Usage: run_timeline [app] [model] [seed] [width]
///   defaults: CHIMERA P2 11 120

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/simulation.hpp"
#include "core/timeline.hpp"
#include "failure/lead_time_model.hpp"
#include "failure/system_catalog.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;
  const std::string app_name = argc > 1 ? argv[1] : "CHIMERA";
  const auto kind = core::model_from_string(argc > 2 ? argv[2] : "P2");
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;
  const std::size_t width = argc > 4 ? std::strtoul(argv[4], nullptr, 10)
                                     : 120;

  const auto& app = workload::workload_by_name(app_name);
  const auto machine = workload::summit();
  const auto storage = machine.make_storage();
  const auto leads = failure::LeadTimeModel::summit_default();

  core::RunSetup setup;
  setup.app = &app;
  setup.machine = &machine;
  setup.storage = &storage;
  setup.system = &failure::system_by_name("titan");
  setup.leads = &leads;
  setup.seed = seed;

  core::CrConfig cfg;
  cfg.kind = kind;
  cfg.record_timeline = true;
  const auto r = core::simulate_run(setup, cfg);

  std::printf("run_timeline: %s under %s (seed %llu) — makespan %.1f h, "
              "%d failures, FT %.2f\n\n",
              app.name.c_str(), std::string(core::to_string(kind)).c_str(),
              static_cast<unsigned long long>(seed), r.makespan_s / 3600.0,
              r.failures, r.ft_ratio());

  std::printf("%s\n", r.timeline.render_ascii(width).c_str());
  std::printf("legend: '='=compute  'b'=BB ckpt  '1'=p-ckpt phase1  "
              "'2'=phase2  'R'=recovery  's'=LM stall\n\n");

  std::printf("phase totals (h):\n");
  using core::PhaseKind;
  for (auto k : {PhaseKind::kCompute, PhaseKind::kBbCheckpoint,
                 PhaseKind::kProactivePhase1, PhaseKind::kProactivePhase2,
                 PhaseKind::kRecovery, PhaseKind::kStall}) {
    std::printf("  %-16s %10.3f\n", std::string(core::to_string(k)).c_str(),
                r.timeline.total(k) / 3600.0);
  }

  std::printf("\nevents:\n");
  for (const auto& m : r.timeline.markers()) {
    std::printf("  [%9.1f s] %s\n", m.time_s,
                std::string(core::to_string(m.kind)).c_str());
  }
  return 0;
}
