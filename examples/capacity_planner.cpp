/// Capacity planner: the paper's Recommendation (Observations 4 and 6) as
/// a tool. Given an application (nodes, checkpoint size, runtime) and a
/// failure environment, it reports the decision inputs (LM latency theta,
/// p-ckpt phase-1 latency, LM-eligible fraction sigma, the Eq. 8 alpha
/// threshold) and recommends a C/R model, then validates the
/// recommendation with a short paired simulation campaign.
///
/// Usage: capacity_planner [nodes] [ckpt_total_gb] [compute_hours] [system]
///   defaults: 1515 149625 240 titan   (i.e., XGC)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/analytic_model.hpp"
#include "core/campaign.hpp"
#include "core/oci.hpp"
#include "core/simulation.hpp"
#include "failure/lead_time_model.hpp"
#include "failure/system_catalog.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;

  workload::Application app;
  app.name = "custom";
  app.nodes = argc > 1 ? std::atoi(argv[1]) : 1515;
  app.ckpt_total_gb = argc > 2 ? std::atof(argv[2]) : 149625.0;
  app.compute_hours = argc > 3 ? std::atof(argv[3]) : 240.0;
  const std::string system_name = argc > 4 ? argv[4] : "titan";
  app.validate();

  const auto machine = workload::summit();
  const auto storage = machine.make_storage();
  const auto& system = failure::system_by_name(system_name);
  const auto leads = failure::LeadTimeModel::summit_default();
  failure::PredictorConfig pred;

  const double theta = core::lm_theta_seconds(app, machine, storage, 3.0);
  const double phase1 =
      storage.pfs_single_node_seconds(app.ckpt_per_node_gb());
  const double safeguard =
      storage.pfs_aggregate_seconds(app.nodes, app.ckpt_per_node_gb());
  const double sigma = core::estimate_sigma(leads, pred, theta, 1.0);
  const double beta =
      pred.recall * leads.ccdf(phase1 / pred.lead_scale);
  const double mtbf_h = system.job_mtbf_hours(app.nodes);
  const double t_bb = storage.bb_write_seconds(app.ckpt_per_node_gb());
  const double oci1 =
      core::young_oci_seconds(t_bb, system.job_rate_per_second(app.nodes));

  std::printf("capacity planner — %d nodes, %.1f GB/node checkpoints, "
              "%.0f h compute, %s failure distribution\n\n",
              app.nodes, app.ckpt_per_node_gb(), app.compute_hours,
              system.name.c_str());
  std::printf("decision inputs:\n");
  std::printf("  job MTBF                         %10.1f h\n", mtbf_h);
  std::printf("  expected failures per run        %10.1f\n",
              app.compute_hours / mtbf_h);
  std::printf("  BB checkpoint time               %10.2f s\n", t_bb);
  std::printf("  Young OCI (Eq. 1)                %10.2f h\n", oci1 / 3600.0);
  std::printf("  LM latency theta (3x, RAM-capped)%10.2f s\n", theta);
  std::printf("  p-ckpt phase-1 write             %10.2f s\n", phase1);
  std::printf("  full safeguard write             %10.2f s\n", safeguard);
  std::printf("  P(lead > theta)  [LM eligible]   %10.3f\n",
              leads.ccdf(theta));
  std::printf("  P(lead > phase1) [p-ckpt eligible]%9.3f\n",
              leads.ccdf(phase1));
  std::printf("  sigma (Eq. 2)                    %10.3f\n", sigma);
  std::printf("  beta  (p-ckpt-mitigable)         %10.3f\n", beta);
  if (sigma < analysis::sigma_upper_bound()) {
    std::printf("  Eq. 8 alpha threshold            %10.3f (actual alpha 3.0)\n",
                analysis::alpha_threshold_paper(sigma));
  }

  // Paper recommendation: short-runtime large apps on failure-prone
  // systems -> P1; long-running apps -> P2.
  const bool failure_prone = app.compute_hours / mtbf_h > 4.0;
  const bool long_running = app.compute_hours >= 240.0;
  const char* recommended =
      (!long_running && failure_prone && beta > sigma + 0.1) ? "P1" : "P2";
  std::printf("\nrecommendation (per the paper's Observations 4 & 6): %s\n\n",
              recommended);

  // Validate with a short campaign.
  core::RunSetup setup;
  setup.app = &app;
  setup.machine = &machine;
  setup.storage = &storage;
  setup.system = &system;
  setup.leads = &leads;
  std::vector<core::CrConfig> cfgs(3);
  cfgs[0].kind = core::ModelKind::kB;
  cfgs[1].kind = core::ModelKind::kP1;
  cfgs[2].kind = core::ModelKind::kP2;
  const auto res = core::run_model_comparison(setup, cfgs, 60, 99);
  const double base = res[0].total_overhead_s.mean();
  std::printf("validation (60 paired runs):\n");
  for (const auto& r : res) {
    std::printf("  %-2s total overhead %8.2f h (%5.1f%% of B), FT %.3f\n",
                std::string(core::to_string(r.kind)).c_str(),
                r.total_overhead_h(), 100.0 * r.total_overhead_s.mean() / base,
                r.pooled_ft_ratio());
  }
  return 0;
}
