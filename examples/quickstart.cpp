/// Quickstart: simulate one Summit application under all five C/R models
/// and print the paper-style overhead comparison.
///
/// Usage: quickstart [app] [runs] [seed]
///   app   one of CHIMERA, XGC, S3D, GYRO, POP, VULCAN (default POP)
///   runs  number of paired simulation runs (default 50)
///   seed  base RNG seed (default 2022)

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/campaign.hpp"
#include "core/simulation.hpp"
#include "failure/lead_time_model.hpp"
#include "failure/system_catalog.hpp"
#include "workload/application.hpp"
#include "workload/machine.hpp"

int main(int argc, char** argv) {
  using namespace pckpt;

  const std::string app_name = argc > 1 ? argv[1] : "POP";
  const std::size_t runs = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 50;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2022;

  const auto& app = workload::workload_by_name(app_name);
  const auto machine = workload::summit();
  const auto storage = machine.make_storage();
  const auto& system = failure::system_by_name("titan");
  const auto leads = failure::LeadTimeModel::summit_default();

  core::RunSetup setup;
  setup.app = &app;
  setup.machine = &machine;
  setup.storage = &storage;
  setup.system = &system;
  setup.leads = &leads;

  std::vector<core::CrConfig> configs(5);
  configs[0].kind = core::ModelKind::kB;
  configs[1].kind = core::ModelKind::kM1;
  configs[2].kind = core::ModelKind::kM2;
  configs[3].kind = core::ModelKind::kP1;
  configs[4].kind = core::ModelKind::kP2;

  std::printf("quickstart: %s on %d nodes, %.0f h compute, %.1f GB/node "
              "checkpoints, %zu paired runs\n",
              app.name.c_str(), app.nodes, app.compute_hours,
              app.ckpt_per_node_gb(), runs);
  std::printf("LM theta = %.1f s, job MTBF = %.1f h\n\n",
              core::lm_theta_seconds(app, machine, storage, 3.0),
              system.job_mtbf_hours(app.nodes));

  const auto results = core::run_model_comparison(setup, configs, runs, seed);
  const double base = results[0].total_overhead_s.mean();

  std::printf("%-5s %10s %10s %10s %10s %10s %8s %8s %7s\n", "model",
              "ckpt(h)", "recomp(h)", "recov(h)", "migr(h)", "total(h)",
              "%ofB", "FTratio", "fails");
  for (const auto& r : results) {
    std::printf("%-5s %10.3f %10.3f %10.3f %10.3f %10.3f %7.1f%% %8.3f %7.2f\n",
                std::string(core::to_string(r.kind)).c_str(),
                r.checkpoint_h(), r.recomputation_h(), r.recovery_h(),
                r.migration_h(), r.total_overhead_h(),
                100.0 * r.total_overhead_s.mean() / base, r.pooled_ft_ratio(),
                r.failures_per_run());
  }
  return 0;
}
