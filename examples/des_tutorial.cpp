/// DES kernel tutorial: the simulation substrate used by the C/R models,
/// shown standalone. Models a tiny compute cluster where jobs compete for
/// a two-slot PFS writer, a monitor interrupts a job mid-write, and a
/// barrier (all_of) synchronizes the epilogue — the same primitives
/// (processes, timeouts, interrupts, priority resources, conditions) that
/// implement p-ckpt.

#include <cstdio>
#include <string>
#include <vector>

#include "sim/sim.hpp"

namespace {

using namespace pckpt::sim;

struct Cluster {
  Environment env;
  Resource pfs{env, 2};  // two concurrent PFS writers
  int completed_jobs = 0;
  double interrupted_at = -1.0;
};

/// A job: compute, then write its checkpoint through the PFS resource.
/// Lower `priority` values get the PFS first (this is how p-ckpt ranks
/// vulnerable nodes by lead time).
Process job(Cluster& c, std::string name, double compute_s, double write_s,
            double priority) {
  co_await c.env.timeout(compute_s);
  auto req = c.pfs.request(priority);
  ResourceGuard guard(c.pfs, req);
  try {
    co_await req->granted;
    std::printf("[%6.1f s] %-8s starts writing (queue=%zu)\n", c.env.now(),
                name.c_str(), c.pfs.queue_length());
    co_await c.env.timeout(write_s);
    std::printf("[%6.1f s] %-8s committed\n", c.env.now(), name.c_str());
    ++c.completed_jobs;
  } catch (const Interrupted& irq) {
    c.interrupted_at = c.env.now();
    std::printf("[%6.1f s] %-8s interrupted (%s) — releasing the PFS slot\n",
                c.env.now(), name.c_str(),
                std::any_cast<const char*>(irq.cause()));
  }
}

Process monitor(Cluster& c, Process victim, double after_s) {
  co_await c.env.timeout(after_s);
  victim.interrupt("predicted failure");
}

}  // namespace

int main() {
  Cluster c;

  std::puts("des_tutorial — processes, priority resources, interrupts\n");

  // Four jobs contending for two PFS slots; gamma and delta arrive later
  // but carry more urgent priorities and overtake the FIFO order.
  auto a = c.env.spawn(job(c, "alpha", 10.0, 30.0, 5.0)).named("alpha");
  auto b = c.env.spawn(job(c, "beta", 10.0, 30.0, 4.0)).named("beta");
  auto g = c.env.spawn(job(c, "gamma", 11.0, 20.0, 1.0)).named("gamma");
  auto d = c.env.spawn(job(c, "delta", 11.0, 20.0, 2.0)).named("delta");

  // A monitor predicts a failure on alpha mid-write and interrupts it.
  c.env.spawn(monitor(c, a, 25.0)).named("monitor");

  // A barrier over the surviving jobs (all_of is the broadcast/join
  // primitive behind p-ckpt's pfs-commit notification).
  auto epilogue = [](Cluster& cl, EventPtr barrier) -> Process {
    co_await barrier;
    std::printf("[%6.1f s] barrier: all surviving jobs committed\n",
                cl.env.now());
  };
  c.env.spawn(epilogue(
      c, all_of(c.env, {b.done_event(), g.done_event(), d.done_event()})));

  c.env.run();

  std::printf("\ncompleted jobs: %d, alpha interrupted at t=%.1f s\n",
              c.completed_jobs, c.interrupted_at);
  std::printf("events processed: %llu, simulated horizon: %.1f s\n",
              static_cast<unsigned long long>(c.env.events_processed()),
              c.env.now());
  return c.completed_jobs == 3 ? 0 : 1;
}
